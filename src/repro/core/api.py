"""Public KDV API.

:func:`compute_kdv` is the single entry point a downstream user needs: pick a
dataset, a region/resolution, a kernel, a bandwidth, and a method, get back a
:class:`repro.core.result.KDVResult`.

Method registry (the paper's Table 6):

==================  =====  ==========================================
name                exact  description
==================  =====  ==========================================
scan                yes    naive O(XYn) scan
rqs_kd              yes    range queries on a kd-tree
rqs_ball            yes    range queries on a ball tree
rqs_rtree           yes    range queries on an STR R-tree (extension)
zorder              no     Z-order curve sampling [Zheng et al. 2013]
akde                no     bound-based tree pruning [Gray & Moore 2003]
akde_dual           no     dual-tree aKDE (extension; Gray & Moore's
                           full proposal)
binned_fft          no     binning + FFT convolution (extension; the
                           practice-standard approximation)
quad                yes    quadratic-bound kd-tree [Chan et al. 2020]
slam_sort           yes    Algorithm 1, O(Y(X + n log n))
slam_bucket         yes    Algorithm 2, O(Y(X + n))
slam_sort_rao       yes    Algorithm 1 + RAO, O(min(X,Y)(max(X,Y)+n log n))
slam_bucket_rao     yes    Algorithm 2 + RAO, O(min(X,Y)(max(X,Y)+n)) —
                           the paper's best method and our default
==================  =====  ==========================================
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..baselines.akde import akde_grid
from ..baselines.akde_dual import akde_dual_grid
from ..baselines.binned_fft import binned_fft_grid
from ..baselines.quad import quad_grid
from ..baselines.rqs import rqs_ball_grid, rqs_kd_grid, rqs_rtree_grid
from ..baselines.scan import scan_grid
from ..baselines.zorder import zorder_grid
from ..data.points import PointSet
from ..obs import Recorder, active
from ..viz.bandwidth import BANDWIDTH_SELECTORS, resolve_bandwidth
from ..viz.region import Raster, Region
from .envelope import YSortedIndex
from .kernels import Kernel, get_kernel
from .parallel import resolve_workers, validate_backend
from .rao import with_rao
from .result import KDVResult, SweepStats
from .slam_bucket import slam_bucket_grid
from .slam_sort import slam_sort_grid

__all__ = [
    "compute_kdv",
    "METHODS",
    "EXACT_METHODS",
    "APPROXIMATE_METHODS",
    "PARALLEL_METHODS",
    "method_names",
]

GridFn = Callable[..., np.ndarray]


def _slam_fn(name: str, table: dict[str, GridFn], rao: bool) -> Callable[..., np.ndarray]:
    def fn(xy, raster, kernel, bandwidth, engine="numpy", **kwargs):
        if engine not in table:
            raise ValueError(
                f"unknown engine {engine!r} for method {name!r}; "
                f"available: {sorted(table)}"
            )
        base = table[engine]
        if rao:
            return with_rao(base)(xy, raster, kernel, bandwidth, **kwargs)
        return base(xy, raster, kernel, bandwidth, **kwargs)

    return fn


def _plain(fn: GridFn) -> Callable[..., np.ndarray]:
    def wrapped(xy, raster, kernel, bandwidth, engine="numpy", **kwargs):
        # SCAN / RQS / Z-order have a single implementation; "engine" is
        # accepted for interface uniformity and ignored.
        return fn(xy, raster, kernel, bandwidth, **kwargs)

    return wrapped


def _engined(fn: GridFn) -> Callable[..., np.ndarray]:
    def wrapped(xy, raster, kernel, bandwidth, engine="numpy", **kwargs):
        return fn(xy, raster, kernel, bandwidth, engine=engine, **kwargs)

    return wrapped


#: method name -> (grid function, exact?)
METHODS: dict[str, tuple[Callable[..., np.ndarray], bool]] = {
    "scan": (_plain(scan_grid), True),
    "rqs_kd": (_plain(rqs_kd_grid), True),
    "rqs_ball": (_plain(rqs_ball_grid), True),
    "rqs_rtree": (_plain(rqs_rtree_grid), True),
    "zorder": (_plain(zorder_grid), False),
    "akde": (_engined(akde_grid), False),
    "akde_dual": (_plain(akde_dual_grid), False),
    "binned_fft": (_plain(binned_fft_grid), False),
    "quad": (_engined(quad_grid), True),
    "slam_sort": (_slam_fn("slam_sort", slam_sort_grid, rao=False), True),
    "slam_bucket": (_slam_fn("slam_bucket", slam_bucket_grid, rao=False), True),
    "slam_sort_rao": (_slam_fn("slam_sort_rao", slam_sort_grid, rao=True), True),
    "slam_bucket_rao": (_slam_fn("slam_bucket_rao", slam_bucket_grid, rao=True), True),
}

EXACT_METHODS = tuple(name for name, (_, exact) in METHODS.items() if exact)
APPROXIMATE_METHODS = tuple(name for name, (_, exact) in METHODS.items() if not exact)

#: Methods whose row sweep honors the ``workers`` parallelism parameter.
PARALLEL_METHODS = ("slam_sort", "slam_bucket", "slam_sort_rao", "slam_bucket_rao")

_NORMALIZATIONS = ("none", "count", "density")


def method_names() -> tuple[str, ...]:
    """All registered method names, in Table 6 order."""
    return tuple(METHODS)


def compute_kdv(
    points: "PointSet | np.ndarray",
    region: Region | None = None,
    size: tuple[int, int] = (1280, 960),
    kernel: "str | Kernel" = "epanechnikov",
    bandwidth: "float | str" = "scott",
    method: str = "slam_bucket_rao",
    engine: str = "numpy",
    normalization: str = "count",
    weights: np.ndarray | None = None,
    workers: "int | str" = 1,
    ysorted: "YSortedIndex | None" = None,
    collect_stats: bool = False,
    recorder: "Recorder | None" = None,
    **method_kwargs,
) -> KDVResult:
    """Compute a kernel density visualization.

    Parameters
    ----------
    points:
        A :class:`~repro.data.points.PointSet` or an ``(n, 2)`` array.
    region:
        World-coordinate rectangle to render; defaults to the dataset MBR.
    size:
        ``(X, Y)`` resolution in pixels (paper default 1280 x 960).
    kernel:
        ``"uniform"``, ``"epanechnikov"`` (default, as in the paper),
        ``"quartic"``, or a :class:`~repro.core.kernels.Kernel` instance.
    bandwidth:
        A positive float in world units, or a selector name: ``"scott"``
        for Scott's rule (the paper's default), ``"silverman"`` for
        Silverman's robust rule, or ``"lcv"`` for likelihood
        cross-validation (see :mod:`repro.viz.bandwidth`).
    method:
        One of :func:`method_names`.
    engine:
        ``"numpy"`` (vectorized per row, default), ``"python"`` (literal
        transcription of the published pseudocode), ``"numpy_batch"``
        (whole row blocks in O(1) array calls; bit-identical to ``"numpy"``
        under the bucket methods — see :mod:`repro.core.batch`), or
        ``"native"`` (fused C loop with OpenMP row parallelism, bit-identical
        to ``"numpy_batch"``; registered only when the optional extension is
        compiled — see :mod:`repro.core.native` and ``docs/native.md``)
        where available.
    normalization:
        ``"none"`` (raw kernel sums, w = 1), ``"count"`` (w = 1/n, default;
        1/total-weight for weighted datasets), or ``"density"`` (proper 2-D
        density estimate).
    weights:
        Optional ``(n,)`` non-negative per-point weights (e.g. accident
        severity).  Defaults to the :class:`PointSet`'s ``w`` field when one
        is set.  All methods support weighting; the density becomes
        ``sum_p w_p K(q, p)``.
    workers:
        ``1`` (default, serial), an integer worker count, or ``"auto"`` for
        the CPU count.  Honored by the SLAM methods
        (:data:`PARALLEL_METHODS`), which partition the sweep into row
        blocks; results are bit-identical for every setting.  Other methods
        run serially regardless.  Pass ``backend="thread"`` as a method
        kwarg to use threads instead of processes (effective for the numpy
        engines, whose array ops release the GIL), or ``backend="dist"`` to
        fan the sweep out to external worker processes via a
        :class:`repro.dist.Coordinator` (pass one as the ``coordinator``
        method kwarg, or let :func:`repro.dist.resolve_coordinator` find
        one; see ``docs/distributed.md``).  Backend names are validated up
        front via :func:`repro.core.parallel.validate_backend` for every
        method that accepts one.
    ysorted:
        Optional pre-built :class:`~repro.core.envelope.YSortedIndex` over
        exactly these points, letting repeated calls on the same dataset
        (e.g. tile rendering) skip the O(n log n) sort.  Only the SLAM
        methods (:data:`PARALLEL_METHODS`) consume the index; passing one
        with any other method raises.  RAO methods reuse it in both
        orientations via its cached transposed twin.
    collect_stats:
        ``True`` attaches a fresh :class:`~repro.obs.Recorder` to the
        computation and returns it on :attr:`KDVResult.recorder`.  SLAM
        methods record per-phase sweep timings (index build, envelope
        update, endpoint sort/bucket, prefix sweep) and row/envelope
        counters; other methods record a single ``compute`` span.  The
        default ``False`` skips all instrumentation — the sweep hot path
        pays nothing.
    recorder:
        Pass an existing :class:`~repro.obs.Recorder` to accumulate several
        computations into one dump (e.g. a benchmark cell that renders many
        tiles).  Implies ``collect_stats``.
    method_kwargs:
        Extra options forwarded to the method (e.g. ``tolerance`` for aKDE,
        ``sample_size`` for Z-order, ``leaf_size`` for tree methods,
        ``backend`` for the SLAM methods, ``max_block_bytes`` for the
        ``numpy_batch`` engine).

    Returns
    -------
    :class:`~repro.core.result.KDVResult`
    """
    if isinstance(points, PointSet):
        xy = points.xy
        if weights is None and points.w is not None:
            weights = points.w
    else:
        xy = np.asarray(points, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; available: {method_names()}")
    if normalization not in _NORMALIZATIONS:
        raise ValueError(
            f"unknown normalization {normalization!r}; available: {_NORMALIZATIONS}"
        )
    kernel_obj = get_kernel(kernel)
    resolve_workers(workers)  # reject bad values up front, for every method
    if "backend" in method_kwargs:
        # Same up-front treatment for the backend name: one shared
        # validation path (sorted availability list) for every layer.
        validate_backend(method_kwargs["backend"])
    if region is None:
        if len(xy) == 0:
            raise ValueError("region is required for an empty dataset")
        region = Region.from_points(xy)
    width, height = size
    raster = Raster(region, int(width), int(height))
    n = len(xy)

    if isinstance(bandwidth, str) and n == 0:
        if bandwidth not in BANDWIDTH_SELECTORS:
            raise ValueError(
                f"unknown bandwidth selector {bandwidth!r}; pass a positive "
                f"number or one of {sorted(BANDWIDTH_SELECTORS)}"
            )
        # Data-driven selectors are undefined without data.  The grid below
        # is identically zero whatever the bandwidth, so any positive
        # placeholder keeps the result well-formed; pick one scaled to the
        # region so downstream consumers see a plausible value.
        bandwidth_value = min(region.width, region.height) / 10.0
    else:
        bandwidth_value = resolve_bandwidth(bandwidth, xy)

    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(xy),):
            raise ValueError(
                f"weights must have shape ({len(xy)},), got {weights.shape}"
            )
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        method_kwargs = {**method_kwargs, "weights": weights}

    if ysorted is not None:
        if method not in PARALLEL_METHODS:
            raise ValueError(
                f"ysorted is only consumed by the SLAM methods "
                f"{PARALLEL_METHODS}; method {method!r} would silently "
                f"ignore it"
            )
        if not isinstance(ysorted, YSortedIndex):
            raise TypeError(
                f"ysorted must be a YSortedIndex, got {type(ysorted).__name__}"
            )
        if len(ysorted) != n:
            raise ValueError(
                f"ysorted was built over {len(ysorted)} points but the "
                f"dataset has {n}; the index must cover exactly these points"
            )

    if recorder is None and collect_stats:
        recorder = Recorder()
    rec = active(recorder)

    grid_fn, exact = METHODS[method]
    if n == 0:
        # No point contributes anywhere; short-circuit to an all-zeros grid
        # rather than running method internals that assume n >= 1.
        return KDVResult(
            grid=np.zeros(raster.shape, dtype=np.float64),
            raster=raster,
            kernel=kernel_obj.name,
            bandwidth=bandwidth_value,
            method=method,
            normalization=normalization,
            n_points=0,
            exact=exact,
            recorder=rec,
        )

    sweep_stats: dict = {}
    if method in PARALLEL_METHODS:
        method_kwargs = {**method_kwargs, "workers": workers, "stats": sweep_stats}
        if ysorted is not None:
            method_kwargs["ysorted"] = ysorted
        if rec is not None:
            method_kwargs["recorder"] = rec
        grid = grid_fn(
            xy, raster, kernel_obj, bandwidth_value, engine=engine, **method_kwargs
        )
    elif rec is not None:
        # Baselines have no internal phases; record the whole computation as
        # one span so every method is comparable in a recorder dump.
        with rec.span(f"compute.{method}"):
            grid = grid_fn(
                xy, raster, kernel_obj, bandwidth_value, engine=engine,
                **method_kwargs,
            )
    else:
        grid = grid_fn(
            xy, raster, kernel_obj, bandwidth_value, engine=engine, **method_kwargs
        )

    total_mass = float(weights.sum()) if weights is not None else float(n)
    if normalization == "count" and total_mass > 0:
        grid = grid / total_mass
    elif normalization == "density" and total_mass > 0:
        grid = grid * (kernel_obj.normalizer(bandwidth_value) / total_mass)

    stats = None
    if sweep_stats:
        phases: dict[str, float] = {}
        counters: dict[str, int] = {}
        if rec is not None:
            snap = rec.snapshot()
            phases = {name: p["total_s"] for name, p in snap["phases"].items()}
            counters = dict(snap["counters"])
        stats = SweepStats(
            rows=sweep_stats["rows"],
            blocks=sweep_stats["blocks"],
            workers=sweep_stats["workers"],
            backend=sweep_stats["backend"],
            orientation=sweep_stats.get("orientation", "rows"),
            elapsed_seconds=sweep_stats["elapsed_seconds"],
            rows_per_sec=sweep_stats["rows_per_sec"],
            phases=phases,
            counters=counters,
        )

    return KDVResult(
        grid=grid,
        raster=raster,
        kernel=kernel_obj.name,
        bandwidth=bandwidth_value,
        method=method,
        normalization=normalization,
        n_points=n,
        exact=exact,
        stats=stats,
        recorder=rec,
    )
