"""SLAM_BUCKET — the bucket-based sweep line algorithm (paper Algorithm 2).

The pixel centers of a row are evenly spaced, so the bucket that an interval
endpoint falls into can be computed arithmetically in O(1) (paper
Equations 19-20) instead of by sorting.  Each endpoint is assigned to the
pixel index at which it takes effect:

* a point *enters* the candidate set ``L`` at the first pixel ``i`` with
  ``xs[i] >= LB_k(p)``;
* it *enters* ``U`` (stops contributing) at the first pixel ``i`` with
  ``xs[i] > UB_k(p)`` (strict, so a pixel exactly on the upper bound still
  counts the point — Lemma 2's closed interval).

The sweep then visits pixels left to right, merging each pixel's buckets into
the running aggregates and evaluating the density in O(1) (Lemma 5).  Row
cost: O(m + X), giving O(Y (n + X)) overall (Theorem 2).

Floating-point robustness: the arithmetic bucket index
``ceil((LB - xs[0]) / gx)`` can be off by one when an endpoint coincides with
a pixel center (or within one ulp of it).  Both engines apply a one-step
correction against the actual pixel coordinates, which restores the exact
``searchsorted`` semantics; rounding error is far below one pixel gap, so a
single step suffices.
"""

from __future__ import annotations

import math
from time import perf_counter

import numpy as np

from ..obs import Recorder
from .batch import numpy_batch_grid
from .bounds import bucket_indices
from .native import NATIVE_AVAILABLE, native_grid
from .kernels import Kernel
from .sweep import PHASE_ENDPOINT_BUCKET, PHASE_PREFIX_SWEEP, make_grid_function

__all__ = [
    "slam_bucket_row_python",
    "slam_bucket_row_numpy",
    "slam_bucket_grid",
    "bucket_indices",
    "PHASE_ENDPOINT_BUCKET",
]


def slam_bucket_row_python(
    xs: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    chans: np.ndarray,
    kernel: Kernel,
    recorder: "Recorder | None" = None,
) -> np.ndarray:
    """Literal transcription of Algorithm 2 with explicit bucket lists."""
    num_pixels = len(xs)
    num_channels = chans.shape[1]
    x0 = float(xs[0])
    gx = float(xs[1] - xs[0]) if num_pixels > 1 else 1.0

    t0 = perf_counter() if recorder is not None else 0.0
    # Lower/upper bound buckets, one per pixel plus the past-the-end bucket.
    buckets_l: list[list[int]] = [[] for _ in range(num_pixels + 1)]
    buckets_u: list[list[int]] = [[] for _ in range(num_pixels + 1)]

    for p in range(len(lb)):
        i_l = min(max(math.ceil((lb[p] - x0) / gx), 0), num_pixels)
        # float correction (see module docstring)
        if i_l < num_pixels and xs[i_l] < lb[p]:
            i_l += 1
        elif i_l > 0 and xs[i_l - 1] >= lb[p]:
            i_l -= 1
        i_u = min(max(math.floor((ub[p] - x0) / gx) + 1, 0), num_pixels)
        if i_u < num_pixels and xs[i_u] <= ub[p]:
            i_u += 1
        elif i_u > 0 and xs[i_u - 1] > ub[p]:
            i_u -= 1
        buckets_l[min(i_l, num_pixels)].append(p)
        buckets_u[min(i_u, num_pixels)].append(p)
    if recorder is not None:
        t1 = perf_counter()
        recorder.timer(PHASE_ENDPOINT_BUCKET).add(t1 - t0)

    agg_l = [0.0] * num_channels
    agg_u = [0.0] * num_channels
    out = np.zeros(num_pixels, dtype=np.float64)
    diff = np.zeros(num_channels, dtype=np.float64)
    for i in range(num_pixels):
        for p in buckets_l[i]:
            for c in range(num_channels):
                agg_l[c] += chans[p, c]
        for p in buckets_u[i]:
            for c in range(num_channels):
                agg_u[c] += chans[p, c]
        for c in range(num_channels):
            diff[c] = agg_l[c] - agg_u[c]
        out[i] = kernel.density_from_aggregates(float(xs[i]), 0.0, diff, 1.0)
    if recorder is not None:
        recorder.timer(PHASE_PREFIX_SWEEP).add(perf_counter() - t1)
    return out


def slam_bucket_row_numpy(
    xs: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    chans: np.ndarray,
    kernel: Kernel,
    recorder: "Recorder | None" = None,
) -> np.ndarray:
    """Vectorized Algorithm 2: per-channel bincount of bucket deltas + cumsum."""
    num_pixels = len(xs)
    num_channels = chans.shape[1]
    t0 = perf_counter() if recorder is not None else 0.0
    enter, leave = bucket_indices(xs, lb, ub)
    if recorder is not None:
        t1 = perf_counter()
        recorder.timer(PHASE_ENDPOINT_BUCKET).add(t1 - t0)

    # net[i] = (channel sums entering at pixel i) - (channel sums leaving);
    # the running aggregate at pixel i is the prefix sum over buckets <= i.
    net = np.empty((num_pixels + 1, num_channels), dtype=np.float64)
    for c in range(num_channels):
        net[:, c] = np.bincount(enter, weights=chans[:, c], minlength=num_pixels + 1)
        net[:, c] -= np.bincount(leave, weights=chans[:, c], minlength=num_pixels + 1)
    agg = np.cumsum(net[:num_pixels], axis=0)
    out = kernel.density_from_aggregates(xs, 0.0, agg, 1.0)
    if recorder is not None:
        recorder.timer(PHASE_PREFIX_SWEEP).add(perf_counter() - t1)
    return out


#: Grid-level SLAM_BUCKET, engine selected by the caller.  ``numpy_batch``
#: computes whole row blocks in O(1) NumPy calls (see repro.core.batch) and
#: is bit-identical to the per-row ``numpy`` engine.
slam_bucket_grid = {
    "python": make_grid_function(slam_bucket_row_python),
    "numpy": make_grid_function(slam_bucket_row_numpy),
    "numpy_batch": numpy_batch_grid,
}

# The fused-C ``native`` engine registers only when its extension compiled
# (optional-build pattern; see repro.core.native and docs/native.md).
if NATIVE_AVAILABLE:
    slam_bucket_grid["native"] = native_grid
