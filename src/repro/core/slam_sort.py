"""SLAM_SORT — the sorting-based sweep line algorithm (paper Algorithm 1).

Per pixel row: sort the interval endpoints ``LB_k(p)``/``UB_k(p)`` of the
envelope points together with the (already sorted) pixel x-centers into one
event list, then sweep left to right.  Crossing a lower bound moves the point
into the set ``L`` (it *may* now contribute); crossing an upper bound moves it
into ``U`` (it no longer contributes); reaching a pixel evaluates the density
from the aggregate difference ``L - U`` in O(1) (Lemma 3).

Row cost: O(m log m + X) for m = |E(k)| envelope points, giving
O(Y (n log n + X)) overall (Theorem 1).

Two engines:

* :func:`slam_sort_row_python` — a literal transcription of Algorithm 1's
  event sweep, kept simple for auditability; used as algorithmic ground truth
  in the tests.
* :func:`slam_sort_row_numpy` — the same sweep expressed as sorted-endpoint
  prefix sums: the aggregate of ``L`` at pixel x is the prefix sum of channel
  values in LB-sorted order up to ``searchsorted(lb, x, side="right")``
  (and analogously, strictly, for ``U``).  Identical output, vectorized.

Tie convention: a pixel exactly on an interval endpoint *counts* the point
(``LB <= q.x <= UB``, matching Lemma 2's closed interval and the ``dist <= b``
test of the direct evaluation), so both engines agree bit-for-bit with SCAN
on the set ``R(q)`` even for crafted integer inputs.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..obs import Recorder
from .batch import numpy_batch_grid
from .kernels import Kernel
from .native import NATIVE_AVAILABLE, native_grid
from .sweep import PHASE_ENDPOINT_SORT, PHASE_PREFIX_SWEEP, make_grid_function

__all__ = [
    "slam_sort_row_python",
    "slam_sort_row_numpy",
    "slam_sort_grid",
    "PHASE_ENDPOINT_SORT",
    "PHASE_PREFIX_SWEEP",
]

# Event type codes; the sort key is (x, type) so that at equal x the order is
# "enter L" -> "evaluate pixel" -> "enter U", implementing the closed interval.
_EVENT_LB = 0
_EVENT_PIXEL = 1
_EVENT_UB = 2


def slam_sort_row_python(
    xs: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    chans: np.ndarray,
    kernel: Kernel,
    recorder: "Recorder | None" = None,
) -> np.ndarray:
    """Literal event-list sweep of Algorithm 1 for one pixel row."""
    num_channels = chans.shape[1]
    t0 = perf_counter() if recorder is not None else 0.0
    events: list[tuple[float, int, int]] = []
    for p in range(len(lb)):
        events.append((float(lb[p]), _EVENT_LB, p))
        events.append((float(ub[p]), _EVENT_UB, p))
    for i, x in enumerate(xs):
        events.append((float(x), _EVENT_PIXEL, i))
    events.sort(key=lambda e: (e[0], e[1]))
    if recorder is not None:
        t1 = perf_counter()
        recorder.timer(PHASE_ENDPOINT_SORT).add(t1 - t0)

    agg_l = [0.0] * num_channels  # aggregates of L (points whose LB was passed)
    agg_u = [0.0] * num_channels  # aggregates of U (points whose UB was passed)
    out = np.zeros(len(xs), dtype=np.float64)
    diff = np.zeros(num_channels, dtype=np.float64)
    for x, etype, idx in events:
        if etype == _EVENT_LB:  # case 1: sweep line meets LB_k(p)
            for c in range(num_channels):
                agg_l[c] += chans[idx, c]
        elif etype == _EVENT_UB:  # case 2: sweep line meets UB_k(p)
            for c in range(num_channels):
                agg_u[c] += chans[idx, c]
        else:  # case 3: sweep line meets a pixel -> evaluate (Lemma 3)
            for c in range(num_channels):
                diff[c] = agg_l[c] - agg_u[c]
            out[idx] = kernel.density_from_aggregates(x, 0.0, diff, 1.0)
    if recorder is not None:
        recorder.timer(PHASE_PREFIX_SWEEP).add(perf_counter() - t1)
    return out


def slam_sort_row_numpy(
    xs: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    chans: np.ndarray,
    kernel: Kernel,
    recorder: "Recorder | None" = None,
) -> np.ndarray:
    """Vectorized Algorithm 1: sorted endpoints + prefix sums per row."""
    num_channels = chans.shape[1]
    zero_row = np.zeros((1, num_channels), dtype=np.float64)

    t0 = perf_counter() if recorder is not None else 0.0
    order_l = np.argsort(lb, kind="stable")
    lb_sorted = lb[order_l]
    prefix_l = np.concatenate([zero_row, np.cumsum(chans[order_l], axis=0)])

    order_u = np.argsort(ub, kind="stable")
    ub_sorted = ub[order_u]
    prefix_u = np.concatenate([zero_row, np.cumsum(chans[order_u], axis=0)])
    if recorder is not None:
        t1 = perf_counter()
        recorder.timer(PHASE_ENDPOINT_SORT).add(t1 - t0)

    # L = points with LB <= x (inclusive); U = points with UB < x (strict),
    # so R(q) = L \ U is the closed interval membership of Lemma 2.
    idx_l = np.searchsorted(lb_sorted, xs, side="right")
    idx_u = np.searchsorted(ub_sorted, xs, side="left")
    agg = prefix_l[idx_l] - prefix_u[idx_u]
    out = kernel.density_from_aggregates(xs, 0.0, agg, 1.0)
    if recorder is not None:
        recorder.timer(PHASE_PREFIX_SWEEP).add(perf_counter() - t1)
    return out


#: Grid-level SLAM_SORT, engine selected by the caller.  ``numpy_batch`` is
#: registered here too so the engine choice is uniform across the SLAM
#: methods; it always buckets (Algorithm 2 semantics, see repro.core.batch),
#: so under slam_sort it agrees with the sort engines to float tolerance and
#: with the slam_bucket numpy engine bit-for-bit.
slam_sort_grid = {
    "python": make_grid_function(slam_sort_row_python),
    "numpy": make_grid_function(slam_sort_row_numpy),
    "numpy_batch": numpy_batch_grid,
}

# ``native`` always buckets (bit-identical to the slam_bucket numpy engine),
# mirroring numpy_batch's registration rationale above.
if NATIVE_AVAILABLE:
    slam_sort_grid["native"] = native_grid
