"""Kernel functions and their aggregate decompositions.

The SLAM algorithms are exact because, for the finite-support kernels of the
paper's Table 2, the kernel density at a pixel ``q`` depends on its range-query
solution set ``R(q)`` only through a fixed list of *aggregate values*
(paper Table 4):

=============  =====================================================
Kernel         Aggregates
=============  =====================================================
Uniform        ``|R|``
Epanechnikov   ``|R|``, ``A = sum p``, ``S = sum ||p||^2``
Quartic        additionally ``C = sum ||p||^2 p``, ``Q = sum ||p||^4``,
               ``M = sum p p^T``
=============  =====================================================

Each aggregate is a sum over points of a *channel value* that depends on the
point alone, so it can be maintained incrementally by a sweep line.  We encode
every aggregate as one or more scalar channels in a fixed order:

    idx  channel value of point p = (x, y)
    ---  ----------------------------------
      0  1                 (count, |R|)
      1  x                 (A.x)
      2  y                 (A.y)
      3  x^2 + y^2         (S)
      4  (x^2 + y^2) * x   (C.x)
      5  (x^2 + y^2) * y   (C.y)
      6  (x^2 + y^2)^2     (Q)
      7  x^2               (M[0,0])
      8  x * y             (M[0,1] = M[1,0])
      9  y^2               (M[1,1])

A kernel declares how many leading channels it needs
(:attr:`Kernel.num_channels`); the sweep algorithms carry exactly that many
prefix sums, and :meth:`Kernel.density_from_aggregates` recombines them into
``sum_{p in R(q)} K(q, p)``.

The Gaussian kernel is included for the approximate baselines only: it has
infinite support and no finite aggregate decomposition, so SLAM cannot
evaluate it exactly (paper Section 3.7's closing remark).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Kernel",
    "UniformKernel",
    "EpanechnikovKernel",
    "QuarticKernel",
    "GaussianKernel",
    "get_kernel",
    "KERNELS",
    "channel_values",
    "NUM_CHANNELS",
]

#: Total number of defined aggregate channels (quartic needs all of them).
NUM_CHANNELS = 10


def channel_values(
    xy: np.ndarray, num_channels: int, weights: np.ndarray | None = None
) -> np.ndarray:
    """Channel value matrix for a coordinate array.

    Parameters
    ----------
    xy:
        ``(m, 2)`` point coordinates.
    num_channels:
        How many leading channels to compute (1, 4, or 10 in practice).
    weights:
        Optional ``(m,)`` per-point weights.  Weighted density
        ``sum_p w_p K(q, p)`` decomposes into the *same* aggregates with every
        channel scaled by ``w_p``, so weighting is a row-scaling here and the
        sweep algorithms are untouched.

    Returns
    -------
    ``(m, num_channels)`` float64 array whose column ``c`` holds channel ``c``
    of every point, in the order documented in the module docstring.
    """
    xy = np.asarray(xy, dtype=np.float64)
    m = len(xy)
    if not 1 <= num_channels <= NUM_CHANNELS:
        raise ValueError(f"num_channels must be in [1, {NUM_CHANNELS}], got {num_channels}")
    out = np.empty((m, num_channels), dtype=np.float64)
    out[:, 0] = 1.0
    if num_channels > 1:
        x = xy[:, 0]
        y = xy[:, 1]
        s = x * x + y * y
        out[:, 1] = x
        out[:, 2] = y
        out[:, 3] = s
        if num_channels > 4:
            out[:, 4] = s * x
            out[:, 5] = s * y
            out[:, 6] = s * s
            out[:, 7] = x * x
            out[:, 8] = x * y
            out[:, 9] = y * y
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (m,):
            raise ValueError(f"weights must have shape ({m},), got {w.shape}")
        out *= w[:, None]
    return out


class Kernel(ABC):
    """A radially symmetric kernel ``K(q, p) = k(dist(q, p); b)``."""

    #: Registry name, e.g. ``"epanechnikov"``.
    name: str = ""
    #: Number of leading aggregate channels needed for exact evaluation,
    #: or ``None`` when the kernel has no finite decomposition (Gaussian).
    num_channels: int | None = None

    @abstractmethod
    def evaluate(self, dist_sq: np.ndarray, bandwidth: float) -> np.ndarray:
        """Pointwise kernel value given *squared* distances.

        This is the ground-truth definition every exact method must match.
        """

    def support_radius(self, bandwidth: float) -> float:
        """Distance beyond which the kernel is exactly zero (``inf`` if none)."""
        return bandwidth

    def rescale_factor(self, bandwidth: float) -> float:
        """Ratio ``K_b(d) / K_1(d / b)`` for evaluation in a bandwidth-scaled
        frame.

        The sweep and tree methods evaluate in coordinates divided by ``b``
        (so the kernel sees bandwidth 1) for numerical conditioning.  That is
        value-preserving for kernels that depend on ``d / b`` only
        (Epanechnikov, quartic, Gaussian) but the uniform kernel's plateau
        height is ``1 / b``, so its scaled-frame result must be multiplied by
        this factor.
        """
        return 1.0

    @abstractmethod
    def density_from_aggregates(
        self, qx: np.ndarray, qy: np.ndarray, agg: np.ndarray, bandwidth: float
    ) -> np.ndarray:
        """Recombine aggregate channel sums into ``sum_{p in R(q)} K(q, p)``.

        Parameters
        ----------
        qx, qy:
            Pixel coordinates (broadcastable arrays or scalars).
        agg:
            ``(..., num_channels)`` aggregate sums over ``R(q)``; the leading
            dimensions broadcast against ``qx``/``qy``.
        bandwidth:
            The kernel bandwidth ``b``.
        """

    def density_from_channel_map(
        self,
        qx: np.ndarray,
        qy: np.ndarray,
        channels: "dict[int, np.ndarray]",
        bandwidth: float,
    ) -> np.ndarray:
        """Recombine *standalone* channel arrays into the density.

        Same contract as :meth:`density_from_aggregates` but the aggregates
        arrive as a mapping from channel index to a broadcastable array
        instead of a stacked ``(..., num_channels)`` tensor, so callers that
        hold per-channel arrays (the batch sweep engine) need not copy them
        into one.  A missing key asserts that the channel's aggregate is an
        exact zero the recombination may skip; the SLAM kernels only ever
        exercise this with scalar ``qy == 0.0``, where every term weighted by
        ``qy`` is ``±0.0`` and skipping it preserves values under ``==``.
        ``density_from_aggregates`` routes through this method, so both entry
        points evaluate one formula body and agree bit for bit.
        """
        raise NotImplementedError(
            f"kernel {self.name!r} has no aggregate recombination"
        )

    def normalizer(self, bandwidth: float) -> float:
        """The constant that makes the 2-D kernel integrate to one.

        Used when ``normalization="density"`` is requested so that KDV grids
        are proper density estimates.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class UniformKernel(Kernel):
    """``K = 1/b`` inside the bandwidth disc, zero outside (paper Table 2)."""

    name = "uniform"
    num_channels = 1

    def evaluate(self, dist_sq: np.ndarray, bandwidth: float) -> np.ndarray:
        dist_sq = np.asarray(dist_sq, dtype=np.float64)
        return np.where(dist_sq <= bandwidth * bandwidth, 1.0 / bandwidth, 0.0)

    def density_from_aggregates(
        self, qx: np.ndarray, qy: np.ndarray, agg: np.ndarray, bandwidth: float
    ) -> np.ndarray:
        return self.density_from_channel_map(qx, qy, {0: agg[..., 0]}, bandwidth)

    def density_from_channel_map(
        self,
        qx: np.ndarray,
        qy: np.ndarray,
        channels: "dict[int, np.ndarray]",
        bandwidth: float,
    ) -> np.ndarray:
        # F = (1/b) * |R(q)|   (paper Section 3.7)
        return channels[0] / bandwidth

    def rescale_factor(self, bandwidth: float) -> float:
        # K_b = 1/b inside the disc while K_1 evaluates to 1 in the scaled frame.
        return 1.0 / bandwidth

    def normalizer(self, bandwidth: float) -> float:
        # Integral of 1/b over the disc of radius b is pi * b, so divide by it.
        return 1.0 / (math.pi * bandwidth)


class EpanechnikovKernel(Kernel):
    """``K = 1 - d^2/b^2`` inside the bandwidth disc (the paper's default)."""

    name = "epanechnikov"
    num_channels = 4

    def evaluate(self, dist_sq: np.ndarray, bandwidth: float) -> np.ndarray:
        dist_sq = np.asarray(dist_sq, dtype=np.float64)
        b2 = bandwidth * bandwidth
        return np.where(dist_sq <= b2, 1.0 - dist_sq / b2, 0.0)

    def density_from_aggregates(
        self, qx: np.ndarray, qy: np.ndarray, agg: np.ndarray, bandwidth: float
    ) -> np.ndarray:
        channels = {0: agg[..., 0], 1: agg[..., 1], 2: agg[..., 2], 3: agg[..., 3]}
        return self.density_from_channel_map(qx, qy, channels, bandwidth)

    def density_from_channel_map(
        self,
        qx: np.ndarray,
        qy: np.ndarray,
        channels: "dict[int, np.ndarray]",
        bandwidth: float,
    ) -> np.ndarray:
        # F = |R| - (|R| * ||q||^2 - 2 q . A + S) / b^2      (paper Equation 5)
        qx = np.asarray(qx, dtype=np.float64)
        cnt = channels[0]
        ax = channels[1]
        s = channels[3]
        b2 = bandwidth * bandwidth
        if np.ndim(qy) == 0 and float(qy) == 0.0:
            # Row-local frame fast path: every qy-weighted term is exactly
            # +-0.0, so A.y (channel 2) need not exist — the batch engine
            # omits it — and the result equals the general branch under
            # ``==`` (only the signs of zeros can differ).  ``2.0 * x`` and
            # ``x / 1.0`` are exact, so the reassociations below are bitwise
            # neutral.
            inner = cnt * (qx * qx)
            inner -= (2.0 * qx) * ax
            inner += s
            if b2 != 1.0:
                inner /= b2
            return cnt - inner
        qy = np.asarray(qy, dtype=np.float64)
        ay = channels[2]
        q2 = qx * qx + qy * qy
        return cnt - (cnt * q2 - 2.0 * (qx * ax + qy * ay) + s) / b2

    def normalizer(self, bandwidth: float) -> float:
        # Integral of (1 - d^2/b^2) over the disc is pi * b^2 / 2.
        return 2.0 / (math.pi * bandwidth * bandwidth)


class QuarticKernel(Kernel):
    """``K = (1 - d^2/b^2)^2`` inside the bandwidth disc.

    The default kernel of QGIS and ArcGIS.  Exact evaluation needs all ten
    aggregate channels; the recombination below is the expansion of

        sum (1 - d^2/b^2)^2 = |R| - (2/b^2) sum d^2 + (1/b^4) sum d^4

    with ``d^2 = ||q||^2 - 2 q.p + ||p||^2`` and

        sum d^2 = |R| ||q||^2 - 2 q.A + S
        sum d^4 = |R| ||q||^4 + 4 q^T M q + Q + 2 ||q||^2 S
                  - 4 ||q||^2 (q.A) - 4 q.C
    """

    name = "quartic"
    num_channels = 10

    def evaluate(self, dist_sq: np.ndarray, bandwidth: float) -> np.ndarray:
        dist_sq = np.asarray(dist_sq, dtype=np.float64)
        b2 = bandwidth * bandwidth
        inside = 1.0 - dist_sq / b2
        return np.where(dist_sq <= b2, inside * inside, 0.0)

    def density_from_aggregates(
        self, qx: np.ndarray, qy: np.ndarray, agg: np.ndarray, bandwidth: float
    ) -> np.ndarray:
        channels = {c: agg[..., c] for c in range(self.num_channels)}
        return self.density_from_channel_map(qx, qy, channels, bandwidth)

    def density_from_channel_map(
        self,
        qx: np.ndarray,
        qy: np.ndarray,
        channels: "dict[int, np.ndarray]",
        bandwidth: float,
    ) -> np.ndarray:
        qx = np.asarray(qx, dtype=np.float64)
        b2 = bandwidth * bandwidth
        b4 = b2 * b2
        cnt = channels[0]
        ax = channels[1]
        s = channels[3]
        cx = channels[4]
        qq = channels[6]
        mxx = channels[7]
        if np.ndim(qy) == 0 and float(qy) == 0.0:
            # Row-local frame fast path (see EpanechnikovKernel): the
            # qy-weighted aggregates A.y, C.y, M.xy, M.yy (channels 2, 5,
            # 8, 9) contribute exactly +-0.0 and need not exist; values
            # equal the general branch under ``==``.
            qx2 = qx * qx
            q_dot_a = qx * ax
            sum_d2 = cnt * qx2 - 2.0 * q_dot_a + s
            sum_d4 = (
                cnt * qx2 * qx2
                + 4.0 * (qx2 * mxx)
                + qq
                + 2.0 * qx2 * s
                - 4.0 * qx2 * q_dot_a
                - 4.0 * (qx * cx)
            )
            if b2 != 1.0:
                return cnt - 2.0 * sum_d2 / b2 + sum_d4 / b4
            return cnt - 2.0 * sum_d2 + sum_d4
        qy = np.asarray(qy, dtype=np.float64)
        ay = channels[2]
        cy = channels[5]
        mxy, myy = channels[8], channels[9]
        q2 = qx * qx + qy * qy
        q_dot_a = qx * ax + qy * ay
        sum_d2 = cnt * q2 - 2.0 * q_dot_a + s
        qmq = qx * qx * mxx + 2.0 * qx * qy * mxy + qy * qy * myy
        q_dot_c = qx * cx + qy * cy
        sum_d4 = cnt * q2 * q2 + 4.0 * qmq + qq + 2.0 * q2 * s - 4.0 * q2 * q_dot_a - 4.0 * q_dot_c
        return cnt - 2.0 * sum_d2 / b2 + sum_d4 / b4

    def normalizer(self, bandwidth: float) -> float:
        # Integral of (1 - d^2/b^2)^2 over the disc is pi * b^2 / 3.
        return 3.0 / (math.pi * bandwidth * bandwidth)


class GaussianKernel(Kernel):
    """``K = exp(-d^2 / (2 b^2))`` — infinite support, *no* exact SLAM support.

    Provided so the approximate baselines (SCAN, aKDE, Z-order) can be
    exercised on it; requesting it from a SLAM method raises at the API layer.
    """

    name = "gaussian"
    num_channels = None

    def evaluate(self, dist_sq: np.ndarray, bandwidth: float) -> np.ndarray:
        dist_sq = np.asarray(dist_sq, dtype=np.float64)
        return np.exp(-dist_sq / (2.0 * bandwidth * bandwidth))

    def support_radius(self, bandwidth: float) -> float:
        return math.inf

    def density_from_aggregates(
        self, qx: np.ndarray, qy: np.ndarray, agg: np.ndarray, bandwidth: float
    ) -> np.ndarray:
        raise NotImplementedError(
            "the Gaussian kernel has no finite aggregate decomposition; "
            "SLAM supports the kernels of paper Table 2 only"
        )

    def normalizer(self, bandwidth: float) -> float:
        return 1.0 / (2.0 * math.pi * bandwidth * bandwidth)


#: Registry of kernel singletons keyed by name.
KERNELS: dict[str, Kernel] = {
    k.name: k
    for k in (UniformKernel(), EpanechnikovKernel(), QuarticKernel(), GaussianKernel())
}


def get_kernel(kernel: "str | Kernel") -> Kernel:
    """Resolve a kernel name or instance to a :class:`Kernel`."""
    if isinstance(kernel, Kernel):
        return kernel
    try:
        return KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel {kernel!r}; available: {sorted(KERNELS)}"
        ) from None
