/* Fused native bucket sweep (the "native" engine).
 *
 * One C loop per pixel row performs what the Python engines spread across
 * many NumPy passes: binary-search envelope extraction over the y-sorted
 * points, arithmetic bucket assignment (repro.core.bounds.bucket_indices),
 * accumulation of the live aggregate channels into a thread-local difference
 * row, and the prefix sweep + kernel recombination -- with no intermediate
 * tensors.  Rows are independent, so the loop parallelizes across rows with
 * OpenMP when the toolchain provides it.
 *
 * Bit-identity contract
 * ---------------------
 * The output must equal slam_bucket_row_numpy's bit for bit (pinned by
 * tests/test_batch.py and tests/test_native.py).  Everything below is
 * arranged around that:
 *
 *  - every floating-point expression replicates the reference operand order
 *    (bincount semantics: enter-sums and leave-sums accumulate separately
 *    and are subtracted per bucket; cumsum assigns net[0] directly at i=0);
 *  - pairs are visited in ascending sorted-point order, matching the order
 *    in which bincount accumulates its weights;
 *  - the extension must be compiled with -ffp-contract=off so the compiler
 *    cannot fuse a*b+c into an FMA (which rounds differently);
 *  - C's sqrt/ceil/floor are IEEE-754 correctly rounded, matching NumPy's,
 *    and the float->int64 conversion matches NumPy's astype (both lower to
 *    the same truncating conversion).  The SIMD forms of all of these are
 *    correctly rounded too, so auto-vectorization cannot change a bit.
 *
 * The module is optional: setup.py builds it on a best-effort basis and
 * repro.core.native degrades to the pure-python engines when the import
 * fails.  Only python-side-validated, C-contiguous float64 buffers reach
 * this code (see repro/core/native.py).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#if defined(_MSC_VER)
#include <malloc.h>
#define ALIGNED_ALLOC(align, size) _aligned_malloc((size), (align))
#define ALIGNED_FREE _aligned_free
#else
#define ALIGNED_ALLOC(align, size) aligned_alloc((align), (size))
#define ALIGNED_FREE free
#endif

/* Kernel ids (mirrored by repro.core.native._KERNEL_IDS). */
#define KERNEL_UNIFORM 0
#define KERNEL_EPANECHNIKOV 1
#define KERNEL_QUARTIC 2

/* Live aggregate channels at qy = 0 per kernel (the scaled local frame
 * evaluates every row at y = 0, so the qy-weighted channels are dead). */
#define NLIVE_UNIFORM 1      /* count */
#define NLIVE_EPANECHNIKOV 3 /* count, A.x, S */
#define NLIVE_QUARTIC 6      /* count, A.x, S, C.x, Q, M.xx */
#define NLIVE_MAX 6

/* Difference-row scratch layout: one interleaved block per bucket,
 * [enter channels | pad | leave channels | pad], padded so the prefix loop
 * reads/zeroes each bucket with whole aligned vectors and touches one (or
 * for quartic two adjacent) cache lines per pixel instead of two distant
 * ones.  STRIDE is doubles per bucket, HALF the offset of the leave half. */
#define STRIDE_UNIFORM 2
#define HALF_UNIFORM 1
#define STRIDE_EPANECHNIKOV 8
#define HALF_EPANECHNIKOV 4
/* Quartic's six live channels do not fit a cache line alongside their
 * leave twin, so it keeps the classic split layout instead: enter rows at
 * scratch[0:], leave rows at scratch[qoff:], 6 doubles per bucket each
 * (measured faster than a 96/128-byte interleaved stride). */
#define STRIDE_MAX 16

/* searchsorted(sorted_y, key, side="left") over the y column of (x, y)
 * pairs: first index whose y is >= key. */
static Py_ssize_t
search_left(const double *xy, Py_ssize_t n, double key)
{
    Py_ssize_t lo = 0, hi = n;
    while (lo < hi) {
        Py_ssize_t mid = lo + (hi - lo) / 2;
        if (xy[2 * mid + 1] < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* searchsorted(sorted_y, key, side="right"): first index whose y is > key. */
static Py_ssize_t
search_right(const double *xy, Py_ssize_t n, double key)
{
    Py_ssize_t lo = 0, hi = n;
    while (lo < hi) {
        Py_ssize_t mid = lo + (hi - lo) / 2;
        if (xy[2 * mid + 1] <= key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* Per-row state shared by the kernel-specialized row functions. */
typedef struct {
    const double *xs;   /* (X,) scaled pixel centers */
    int64_t num_pixels; /* X */
    double x0;          /* xs[0] */
    double gx;          /* pixel gap (1.0 when X == 1) */
    const double *xy;   /* (n, 2) y-ascending sorted points */
    Py_ssize_t n;
    const double *weights; /* (n,) in sorted order, or NULL */
    const double *point_u; /* (n,) precomputed (p.x - cx) / bandwidth */
    const double *point_y; /* (n,) contiguous copy of the y column */
    const double *xs2;     /* (X,) precomputed xs[i] * xs[i] */
    const double *x2;      /* (X,) precomputed 2.0 * xs[i] */
    double cx;
    double bandwidth;
} sweep_ctx;

/* Pairs are processed in cache-sized tiles through two phases: a branchless
 * index phase that the compiler can auto-vectorize (all the divisions,
 * sqrt, ceil/floor, and float->int casts -- correctly rounded in both
 * scalar and SIMD form, so vectorization cannot change a bit), then a
 * scalar scatter phase that accumulates the live channels into the
 * enter/leave difference rows.  Ascending pair order is preserved, which
 * the bit-identity contract requires (bincount accumulates in input
 * order). */
#define TILE 512

/* Phase one: bucket indices + the cached v^2 for a tile of pairs.  This is
 * a transcription of repro.core.bounds.bucket_indices, split into an
 * all-FP sub-loop over contiguous inputs (divisions, sqrt, ceil/floor --
 * the compiler vectorizes it) and a scalar index sub-loop for the casts,
 * clamps, and one-step corrections.  The corrections are written
 * branch-free in the reference's own masked form (`(e < X) &
 * (xs[min(e, X-1)] < lb)`), applied sequentially on the updated index. */
static void
tile_indices(const sweep_ctx *ctx, double k, Py_ssize_t t0, Py_ssize_t m,
             int64_t *eidx, int64_t *lidx, double *vsq)
{
    const double *xs = ctx->xs;
    const int64_t X = ctx->num_pixels;
    const double x0 = ctx->x0, gx = ctx->gx, bw = ctx->bandwidth;
    const double *py = ctx->point_y + t0;
    const double *pu = ctx->point_u + t0;
    double lbv[TILE], ubv[TILE], efv[TILE], lfv[TILE];
    for (Py_ssize_t q = 0; q < m; q++) {
        double v = (py[q] - k) / bw;
        double v2 = v * v;
        double radicand = 1.0 - v2;
        if (radicand < 0.0)
            radicand = 0.0;
        double half = sqrt(radicand);
        double lb = pu[q] - half;
        double ub = pu[q] + half;
        vsq[q] = v2;
        lbv[q] = lb;
        ubv[q] = ub;
        efv[q] = ceil((lb - x0) / gx);
        lfv[q] = floor((ub - x0) / gx);
    }
    for (Py_ssize_t q = 0; q < m; q++) {
        double lb = lbv[q], ub = ubv[q];
        int64_t e = (int64_t)efv[q];
        e = e < 0 ? 0 : (e > X ? X : e);
        e += (int64_t)((e < X) & (xs[e < X ? e : X - 1] < lb));
        e -= (int64_t)((e > 0) & (xs[e > 0 ? e - 1 : 0] >= lb));
        eidx[q] = e;
        int64_t l = (int64_t)((uint64_t)(int64_t)lfv[q] + 1);
        l = l < 0 ? 0 : (l > X ? X : l);
        l += (int64_t)((l < X) & (xs[l < X ? l : X - 1] <= ub));
        l -= (int64_t)((l > 0) & (xs[l > 0 ? l - 1 : 0] > ub));
        lidx[q] = l;
    }
}

/* Phase two: scatter one pair's live channels into the difference rows.
 * `half` is the offset of the leave half within the bucket's block (for
 * the interleaved layouts) or within the scratch (for the split quartic
 * layout, which passes precomputed base pointers). */
#define SCATTER(stride, half, nlive, CHANNELS)                                \
    do {                                                                      \
        double ch[NLIVE_MAX];                                                 \
        CHANNELS;                                                             \
        double *ap = scratch + eidx[q] * (stride);                            \
        double *sp = scratch + lidx[q] * (stride) + (half);                   \
        for (int c = 0; c < (nlive); c++) {                                   \
            ap[c] += ch[c];                                                   \
            sp[c] += ch[c];                                                   \
        }                                                                     \
    } while (0)

/* Tile loop shared by the row functions: PAIRS is the phase-two body run
 * for q in [0, m) with `t0 + q` the global pair index. */
#define FOR_TILES(PAIRS)                                                      \
    do {                                                                      \
        int64_t eidx[TILE];                                                   \
        int64_t lidx[TILE];                                                   \
        double vsq[TILE];                                                     \
        for (Py_ssize_t t0 = lo; t0 < hi; t0 += TILE) {                       \
            Py_ssize_t m = (hi - t0) < TILE ? (hi - t0) : TILE;               \
            tile_indices(ctx, k, t0, m, eidx, lidx, vsq);                     \
            PAIRS;                                                            \
        }                                                                     \
    } while (0)

/* The prefix/density loops fold the scratch reset into the sweep itself
 * (each bucket block is zeroed right after it is read, in the same cache
 * line touch), so only the past-the-end bucket X -- which the prefix never
 * visits -- needs explicit clearing afterwards.  The first pixel is peeled
 * out of each loop: cumsum *assigns* net[0], it does not add it to 0.0,
 * and peeling keeps the running aggregates in registers branch-free. */
#define CLEAR_PAST_END(stride)                                                \
    do {                                                                      \
        double *bp = scratch + ctx->num_pixels * (stride);                    \
        for (int c = 0; c < (stride); c++)                                    \
            bp[c] = 0.0;                                                      \
    } while (0)

/* Uniform: density = count (channels[0] / bandwidth with bandwidth 1). */
static void
row_uniform(const sweep_ctx *ctx, double k, Py_ssize_t lo, Py_ssize_t hi,
            double *out_row, double *scratch)
{
    if (ctx->weights == NULL) {
        FOR_TILES({
            for (Py_ssize_t q = 0; q < m; q++)
                SCATTER(STRIDE_UNIFORM, HALF_UNIFORM, NLIVE_UNIFORM,
                        { ch[0] = 1.0; });
        });
    } else {
        FOR_TILES({
            for (Py_ssize_t q = 0; q < m; q++) {
                Py_ssize_t p = t0 + q;
                SCATTER(STRIDE_UNIFORM, HALF_UNIFORM, NLIVE_UNIFORM,
                        { ch[0] = ctx->weights[p]; });
            }
        });
    }
    double run = scratch[0] - scratch[1];
    scratch[0] = scratch[1] = 0.0;
    out_row[0] = run;
    for (int64_t i = 1; i < ctx->num_pixels; i++) {
        double *bp = scratch + i * STRIDE_UNIFORM;
        run += bp[0] - bp[1];
        bp[0] = bp[1] = 0.0;
        out_row[i] = run;
    }
    CLEAR_PAST_END(STRIDE_UNIFORM);
}

/* Epanechnikov at qy = 0 (kernels.py fast path, b2 == 1):
 *   inner = cnt*(qx*qx); inner -= (2*qx)*ax; inner += s; out = cnt - inner */
static void
row_epanechnikov(const sweep_ctx *ctx, double k, Py_ssize_t lo, Py_ssize_t hi,
                 double *out_row, double *scratch)
{
    if (ctx->weights == NULL) {
        FOR_TILES({
            for (Py_ssize_t q = 0; q < m; q++) {
                Py_ssize_t p = t0 + q;
                double u = ctx->point_u[p];
                double v2 = vsq[q];
                SCATTER(STRIDE_EPANECHNIKOV, HALF_EPANECHNIKOV,
                        NLIVE_EPANECHNIKOV, {
                    double u2 = u * u;
                    ch[0] = 1.0;
                    ch[1] = u;
                    ch[2] = u2 + v2;
                });
            }
        });
    } else {
        FOR_TILES({
            for (Py_ssize_t q = 0; q < m; q++) {
                Py_ssize_t p = t0 + q;
                double u = ctx->point_u[p];
                double v2 = vsq[q];
                SCATTER(STRIDE_EPANECHNIKOV, HALF_EPANECHNIKOV,
                        NLIVE_EPANECHNIKOV, {
                    double w = ctx->weights[p];
                    double u2 = u * u;
                    ch[0] = w;
                    ch[1] = u * w;
                    ch[2] = (u2 + v2) * w;
                });
            }
        });
    }
    double cnt = scratch[0] - scratch[4];
    double ax = scratch[1] - scratch[5];
    double s = scratch[2] - scratch[6];
    for (int c = 0; c < STRIDE_EPANECHNIKOV; c++)
        scratch[c] = 0.0;
    double inner = cnt * ctx->xs2[0];
    inner -= ctx->x2[0] * ax;
    inner += s;
    out_row[0] = cnt - inner;
    for (int64_t i = 1; i < ctx->num_pixels; i++) {
        double *bp = scratch + i * STRIDE_EPANECHNIKOV;
        cnt += bp[0] - bp[4];
        ax += bp[1] - bp[5];
        s += bp[2] - bp[6];
        for (int c = 0; c < STRIDE_EPANECHNIKOV; c++)
            bp[c] = 0.0;
        inner = cnt * ctx->xs2[i];
        inner -= ctx->x2[i] * ax;
        inner += s;
        out_row[i] = cnt - inner;
    }
    CLEAR_PAST_END(STRIDE_EPANECHNIKOV);
}

/* Quartic at qy = 0 (kernels.py fast path, b2 == b4 == 1). */
static void
row_quartic(const sweep_ctx *ctx, double k, Py_ssize_t lo, Py_ssize_t hi,
            double *out_row, double *scratch)
{
    const int64_t qoff = (ctx->num_pixels + 1) * NLIVE_QUARTIC;
    if (ctx->weights == NULL) {
        FOR_TILES({
            for (Py_ssize_t q = 0; q < m; q++) {
                Py_ssize_t p = t0 + q;
                double u = ctx->point_u[p];
                double v2 = vsq[q];
                SCATTER(NLIVE_QUARTIC, qoff, NLIVE_QUARTIC, {
                    double u2 = u * u;
                    double s = u2 + v2;
                    ch[0] = 1.0;
                    ch[1] = u;
                    ch[2] = s;
                    ch[3] = s * u;
                    ch[4] = s * s;
                    ch[5] = u2;
                });
            }
        });
    } else {
        FOR_TILES({
            for (Py_ssize_t q = 0; q < m; q++) {
                Py_ssize_t p = t0 + q;
                double u = ctx->point_u[p];
                double v2 = vsq[q];
                SCATTER(NLIVE_QUARTIC, qoff, NLIVE_QUARTIC, {
                    double w = ctx->weights[p];
                    double u2 = u * u;
                    double s = u2 + v2;
                    ch[0] = w;
                    ch[1] = u * w;
                    ch[2] = s * w;
                    ch[3] = (s * u) * w;
                    ch[4] = (s * s) * w;
                    ch[5] = u2 * w;
                });
            }
        });
    }
    double *ap = scratch;
    double *sp = scratch + qoff;
    double cnt = ap[0] - sp[0];
    double ax = ap[1] - sp[1];
    double s = ap[2] - sp[2];
    double cxa = ap[3] - sp[3];
    double qq = ap[4] - sp[4];
    double mxx = ap[5] - sp[5];
    for (int c = 0; c < NLIVE_QUARTIC; c++)
        ap[c] = sp[c] = 0.0;
    for (int64_t i = 0; i < ctx->num_pixels; i++) {
        if (i > 0) {
            ap = scratch + i * NLIVE_QUARTIC;
            sp = scratch + qoff + i * NLIVE_QUARTIC;
            cnt += ap[0] - sp[0];
            ax += ap[1] - sp[1];
            s += ap[2] - sp[2];
            cxa += ap[3] - sp[3];
            qq += ap[4] - sp[4];
            mxx += ap[5] - sp[5];
            for (int c = 0; c < NLIVE_QUARTIC; c++)
                ap[c] = sp[c] = 0.0;
        }
        double qx = ctx->xs[i];
        double qx2 = ctx->xs2[i];
        double q_dot_a = qx * ax;
        double sum_d2 = cnt * qx2;
        sum_d2 -= 2.0 * q_dot_a;
        sum_d2 += s;
        double sum_d4 = (cnt * qx2) * qx2;
        sum_d4 += 4.0 * (qx2 * mxx);
        sum_d4 += qq;
        sum_d4 += (2.0 * qx2) * s;
        sum_d4 -= (4.0 * qx2) * q_dot_a;
        sum_d4 -= 4.0 * (qx * cxa);
        out_row[i] = (cnt - 2.0 * sum_d2) + sum_d4;
    }
    ap = scratch + ctx->num_pixels * NLIVE_QUARTIC;
    sp = scratch + qoff + ctx->num_pixels * NLIVE_QUARTIC;
    for (int c = 0; c < NLIVE_QUARTIC; c++)
        ap[c] = sp[c] = 0.0;
}

static void
process_row(const sweep_ctx *ctx, int kernel_id, double k, double *out_row,
            double *scratch)
{
    Py_ssize_t lo = search_left(ctx->xy, ctx->n, k - ctx->bandwidth);
    Py_ssize_t hi = search_right(ctx->xy, ctx->n, k + ctx->bandwidth);
    if (hi <= lo) {
        /* Empty envelope: the serial loop's `continue` leaves the row
         * zero; `out` arrives uninitialized (np.empty), so write it.
         * Non-empty rows need no pre-zeroing -- the prefix loop stores
         * every pixel. */
        memset(out_row, 0, (size_t)ctx->num_pixels * sizeof(double));
        return;
    }
    switch (kernel_id) {
    case KERNEL_UNIFORM:
        row_uniform(ctx, k, lo, hi, out_row, scratch);
        break;
    case KERNEL_EPANECHNIKOV:
        row_epanechnikov(ctx, k, lo, hi, out_row, scratch);
        break;
    default:
        row_quartic(ctx, k, lo, hi, out_row, scratch);
        break;
    }
}

/* Returns 0 on success, -1 on scratch allocation failure. */
static int
sweep_impl(double *out, const double *ks, Py_ssize_t num_rows,
           sweep_ctx *ctx, int kernel_id, int threads)
{
    /* (X+1) interleaved bucket blocks, 64-aligned so the prefix loop's
     * whole-block loads/stores are single aligned vectors. */
    size_t scratch_bytes =
        (size_t)(ctx->num_pixels + 1) * STRIDE_MAX * sizeof(double);
    scratch_bytes = (scratch_bytes + 63) & ~(size_t)63;
    int oom = 0;

    /* Hoist the per-pair x normalization: u depends only on the point, not
     * the row, and each point participates in O(bandwidth / row gap) rows.
     * Same expression as the per-pair form, so the bits are unchanged.
     * The y column is deinterleaved alongside it so the hot tile loop
     * reads contiguous (vectorizable) streams. */
    size_t ncap = (size_t)(ctx->n > 0 ? ctx->n : 1);
    double *pu = malloc((2 * ncap + 2 * (size_t)ctx->num_pixels)
                        * sizeof(double));
    if (pu == NULL)
        return -1;
    double *py = pu + ncap;
    for (Py_ssize_t p = 0; p < ctx->n; p++) {
        pu[p] = (ctx->xy[2 * p] - ctx->cx) / ctx->bandwidth;
        py[p] = ctx->xy[2 * p + 1];
    }
    ctx->point_u = pu;
    ctx->point_y = py;
    /* Per-pixel constants shared by every row's density loop; the products
     * are the same single multiplications the reference performs per
     * pixel, hoisted out of the row loop. */
    double *xs2 = py + ncap;
    double *x2 = xs2 + ctx->num_pixels;
    for (int64_t i = 0; i < ctx->num_pixels; i++) {
        xs2[i] = ctx->xs[i] * ctx->xs[i];
        x2[i] = 2.0 * ctx->xs[i];
    }
    ctx->xs2 = xs2;
    ctx->x2 = x2;

#ifdef _OPENMP
#pragma omp parallel num_threads(threads)
    {
        double *scratch = ALIGNED_ALLOC(64, scratch_bytes);
        if (scratch == NULL) {
#pragma omp atomic write
            oom = 1;
        }
        else
            memset(scratch, 0, scratch_bytes);
#pragma omp for schedule(dynamic, 16)
        for (Py_ssize_t j = 0; j < num_rows; j++) {
            if (scratch != NULL && !oom)
                process_row(ctx, kernel_id, ks[j],
                            out + (size_t)j * ctx->num_pixels, scratch);
        }
        ALIGNED_FREE(scratch);
    }
#else
    (void)threads;
    double *scratch = ALIGNED_ALLOC(64, scratch_bytes);
    if (scratch == NULL)
        oom = 1;
    else {
        memset(scratch, 0, scratch_bytes);
        for (Py_ssize_t j = 0; j < num_rows; j++)
            process_row(ctx, kernel_id, ks[j],
                        out + (size_t)j * ctx->num_pixels, scratch);
        ALIGNED_FREE(scratch);
    }
#endif
    free(pu);
    return oom ? -1 : 0;
}

static PyObject *
py_sweep(PyObject *self, PyObject *args)
{
    Py_buffer out_b, ks_b, xs_b, xy_b, w_b;
    PyObject *w_obj;
    double cx, bandwidth;
    int kernel_id, threads;

    if (!PyArg_ParseTuple(args, "w*y*y*y*Oddii:sweep", &out_b, &ks_b, &xs_b,
                          &xy_b, &w_obj, &cx, &bandwidth, &kernel_id,
                          &threads))
        return NULL;

    const double *weights = NULL;
    int have_w = 0;
    if (w_obj != Py_None) {
        if (PyObject_GetBuffer(w_obj, &w_b, PyBUF_C_CONTIGUOUS) < 0)
            goto fail;
        have_w = 1;
        weights = (const double *)w_b.buf;
    }

    Py_ssize_t num_rows = ks_b.len / (Py_ssize_t)sizeof(double);
    Py_ssize_t num_pixels = xs_b.len / (Py_ssize_t)sizeof(double);
    Py_ssize_t n = xy_b.len / (Py_ssize_t)(2 * sizeof(double));
    if (out_b.len != num_rows * num_pixels * (Py_ssize_t)sizeof(double)
        || xy_b.len != n * (Py_ssize_t)(2 * sizeof(double))
        || (have_w && w_b.len != n * (Py_ssize_t)sizeof(double))) {
        PyErr_SetString(PyExc_ValueError, "inconsistent buffer sizes");
        goto fail;
    }
    if (kernel_id < KERNEL_UNIFORM || kernel_id > KERNEL_QUARTIC) {
        PyErr_Format(PyExc_ValueError, "unknown kernel id %d", kernel_id);
        goto fail;
    }
    if (threads < 1)
        threads = 1;

    int status = 0;
    if (num_rows > 0 && num_pixels > 0) {
        sweep_ctx ctx;
        ctx.xs = (const double *)xs_b.buf;
        ctx.num_pixels = (int64_t)num_pixels;
        ctx.x0 = ctx.xs[0];
        ctx.gx = num_pixels > 1 ? ctx.xs[1] - ctx.xs[0] : 1.0;
        ctx.xy = (const double *)xy_b.buf;
        ctx.n = n;
        ctx.weights = weights;
        ctx.cx = cx;
        ctx.bandwidth = bandwidth;

        double *out = (double *)out_b.buf;
        const double *ks = (const double *)ks_b.buf;
        Py_BEGIN_ALLOW_THREADS
        status = sweep_impl(out, ks, num_rows, &ctx, kernel_id, threads);
        Py_END_ALLOW_THREADS
    }

    if (have_w)
        PyBuffer_Release(&w_b);
    PyBuffer_Release(&out_b);
    PyBuffer_Release(&ks_b);
    PyBuffer_Release(&xs_b);
    PyBuffer_Release(&xy_b);
    if (status != 0)
        return PyErr_NoMemory();
    Py_RETURN_NONE;

fail:
    if (have_w)
        PyBuffer_Release(&w_b);
    PyBuffer_Release(&out_b);
    PyBuffer_Release(&ks_b);
    PyBuffer_Release(&xs_b);
    PyBuffer_Release(&xy_b);
    return NULL;
}

static PyObject *
py_max_threads(PyObject *self, PyObject *noargs)
{
#ifdef _OPENMP
    return PyLong_FromLong(omp_get_max_threads());
#else
    return PyLong_FromLong(1);
#endif
}

static PyMethodDef native_methods[] = {
    {"sweep", py_sweep, METH_VARARGS,
     "sweep(out, ks, xs, sorted_xy, weights_or_None, cx, bandwidth, "
     "kernel_id, threads)\n\n"
     "Fill the (rows, X) float64 grid `out` (which may be uninitialized --\n"
     "every pixel is stored) with the unscaled bucket-sweep densities,\n"
     "bit-identical to slam_bucket_row_numpy.\n"
     "All array arguments must be C-contiguous float64 buffers."},
    {"max_threads", py_max_threads, METH_NOARGS,
     "OpenMP thread budget (1 when compiled without OpenMP)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "_native_sweep",
    "Fused C bucket-sweep core; see repro.core.native for the engine API.",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__native_sweep(void)
{
    PyObject *m = PyModule_Create(&native_module);
    if (m == NULL)
        return NULL;
#ifdef _OPENMP
    if (PyModule_AddIntConstant(m, "OPENMP", 1) < 0)
#else
    if (PyModule_AddIntConstant(m, "OPENMP", 0) < 0)
#endif
    {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
