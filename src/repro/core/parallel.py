"""Parallel row-block execution for the SLAM sweeps.

The sweep of :mod:`repro.core.sweep` processes pixel rows independently —
each row reads only the shared y-sorted index and the scaled pixel x-centers
— which makes the ``Y``-row loop embarrassingly parallel (the structure
Saule et al. exploit in *Parallel Space-Time Kernel Density Estimation*).
This module owns the dispatch mechanics:

* :func:`partition_rows` splits the ``Y`` rows into roughly
  ``BLOCKS_PER_WORKER`` x ``workers`` contiguous blocks (more blocks than
  workers smooths load imbalance: envelope sizes vary across rows, so equal
  row counts are not equal work);
* :func:`run_blocks` executes a block function over the partition with a
  ``concurrent.futures`` executor and assembles the full grid.

The block function is opaque to the dispatcher: per-row engines hand it
:func:`repro.core.sweep.sweep_rows` (a Python loop over the block's rows)
while whole-block engines hand it :func:`repro.core.sweep.sweep_rows_batched`
(the block computed in a handful of array calls); partitioning, submission,
and assembly are identical either way.

Backends
--------
``"process"`` (default)
    A :class:`~concurrent.futures.ProcessPoolExecutor`.  The shared sweep
    context (index, pixel centers, kernel, engine) is shipped to each worker
    *once* via the pool initializer rather than per task, so per-block
    overhead is one small ``(start, stop)`` submission plus the result block.
``"thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  No pickling and no
    process startup; worthwhile for the NumPy engine whose heavy array ops
    release the GIL.
``"dist"``
    The distributed tier: row *shards* dispatched to external worker
    processes by a :class:`repro.dist.coordinator.Coordinator`.  Listed here
    so one validation path covers every backend a compute can name, but the
    dispatch lives in :func:`repro.core.sweep.sweep_kdv` (the shard planner
    needs the sweep's geometry), not in :func:`run_blocks`.

Determinism: blocks are assembled by row position, each row is computed by
the same code in the same floating-point order regardless of blocking, and
the executors never re-order arithmetic — so every ``workers``/``backend``
combination returns a grid bit-identical to the serial sweep.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable

import numpy as np

__all__ = [
    "BACKENDS",
    "BLOCKS_PER_WORKER",
    "resolve_workers",
    "validate_backend",
    "partition_rows",
    "run_blocks",
]

#: Valid execution backends.  ``process`` and ``thread`` are in-process
#: executors handled by :func:`run_blocks`; ``dist`` routes to the
#: :mod:`repro.dist` coordinator (dispatched in ``sweep_kdv``).
BACKENDS = ("process", "thread", "dist")

#: Target number of blocks per worker.  Over-partitioning by this factor lets
#: the executor balance rows whose envelopes (and therefore costs) differ.
BLOCKS_PER_WORKER = 4


def resolve_workers(workers: "int | str | None") -> int:
    """Normalize a ``workers`` request to a concrete positive worker count.

    ``None`` and ``1`` mean serial; ``"auto"`` resolves to ``os.cpu_count()``;
    any other value must be a positive integer.
    """
    if workers is None:
        return 1
    if workers == "auto":
        return max(1, os.cpu_count() or 1)
    try:
        count = int(workers)
    except (TypeError, ValueError):
        raise ValueError(
            f"workers must be a positive integer or 'auto', got {workers!r}"
        ) from None
    if count != workers and not isinstance(workers, str):
        # e.g. workers=1.5 — silently truncating a worker count is a trap
        raise ValueError(
            f"workers must be a positive integer or 'auto', got {workers!r}"
        )
    if count < 1:
        raise ValueError(f"workers must be a positive integer or 'auto', got {workers!r}")
    return count


def validate_backend(backend: str) -> None:
    """Reject unknown backend names with a stable, sorted availability list.

    The single validation path for every layer that accepts a ``backend``
    (``sweep_kdv``, ``compute_kdv``, the CLI), so new backends appear in
    every error message consistently.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown parallel backend {backend!r}; "
            f"available: {', '.join(sorted(BACKENDS))}"
        )


def partition_rows(num_rows: int, num_blocks: int) -> list[tuple[int, int]]:
    """Split ``range(num_rows)`` into at most ``num_blocks`` contiguous
    near-equal ``(start, stop)`` blocks covering every row exactly once."""
    if num_rows < 0:
        raise ValueError(f"num_rows must be non-negative, got {num_rows}")
    if num_blocks < 1:
        raise ValueError(f"num_blocks must be positive, got {num_blocks}")
    if num_rows == 0:
        return []
    num_blocks = min(num_blocks, num_rows)
    base, extra = divmod(num_rows, num_blocks)
    blocks: list[tuple[int, int]] = []
    start = 0
    for i in range(num_blocks):
        stop = start + base + (1 if i < extra else 0)
        blocks.append((start, stop))
        start = stop
    return blocks


# Per-worker-process sweep context, installed once by the pool initializer so
# the (potentially large) shared arrays are pickled per worker, not per block.
_WORKER_CTX: tuple[Callable[..., np.ndarray], tuple, dict] | None = None


def _init_worker(fn: Callable[..., np.ndarray], args: tuple, kwargs: dict) -> None:
    global _WORKER_CTX
    _WORKER_CTX = (fn, args, kwargs)


def _run_block(start: int, stop: int) -> np.ndarray:
    fn, args, kwargs = _WORKER_CTX
    return fn(start, stop, *args, **kwargs)


def run_blocks(
    block_fn: Callable[..., "np.ndarray | tuple[np.ndarray, object]"],
    args: tuple,
    kwargs: dict,
    num_rows: int,
    workers: int,
    backend: str,
) -> tuple[int, np.ndarray, list]:
    """Evaluate ``block_fn(start, stop, *args, **kwargs)`` over a row
    partition and assemble the ``(num_rows, X)`` grid.

    ``block_fn`` must be a module-level (picklable) function returning either
    a ``(stop - start, X)`` float64 block, or an ``(block, aux)`` pair where
    ``aux`` is any picklable per-block payload — the observability layer uses
    this to ship each worker's recorder snapshot back for merging.

    Returns ``(num_blocks, grid, aux_list)``; ``aux_list`` is empty when the
    block function returns bare arrays, else one entry per block in row
    order.
    """
    validate_backend(backend)
    if backend == "dist":
        # The distributed backend is dispatched by sweep_kdv (the shard
        # planner needs the sweep geometry, not just row bounds); reaching
        # this executor with it means a caller skipped that layer.
        raise ValueError(
            "backend 'dist' is handled by repro.core.sweep.sweep_kdv / "
            "repro.dist.Coordinator, not by run_blocks"
        )
    blocks = partition_rows(num_rows, workers * BLOCKS_PER_WORKER)
    if not blocks:
        return 0, np.zeros((0, 0), dtype=np.float64), []
    workers = min(workers, len(blocks))
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(block_fn, start, stop, *args, **kwargs)
                for start, stop in blocks
            ]
            results = [f.result() for f in futures]
    else:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(block_fn, args, kwargs),
        ) as pool:
            futures = [pool.submit(_run_block, start, stop) for start, stop in blocks]
            results = [f.result() for f in futures]
    aux: list = []
    if results and isinstance(results[0], tuple):
        aux = [r[1] for r in results]
        results = [r[0] for r in results]
    grid = np.empty((num_rows, results[0].shape[1]), dtype=np.float64)
    for (start, stop), block in zip(blocks, results):
        grid[start:stop] = block
    return len(blocks), grid, aux
