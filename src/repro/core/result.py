"""KDV result container."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import Recorder
from ..viz.region import Raster

__all__ = ["KDVResult", "SweepStats"]


@dataclass(frozen=True)
class SweepStats:
    """Lightweight per-call instrumentation of a SLAM sweep.

    Attached to :attr:`KDVResult.stats` by the sweep methods so benchmarks
    and observability hooks can read throughput without re-timing.  When the
    computation ran with a :class:`~repro.obs.Recorder` attached
    (``compute_kdv(..., collect_stats=True)``), :attr:`phases` and
    :attr:`counters` carry the recorder's per-phase breakdown; otherwise
    they are empty dicts.

    Attributes
    ----------
    rows:
        Number of sweep lines actually processed (after RAO the shorter
        raster axis).
    blocks:
        How many contiguous row blocks the sweep was partitioned into
        (1 for the serial path).
    workers:
        Resolved worker count (``"auto"`` already expanded).
    backend:
        ``"serial"``, ``"process"``, or ``"thread"``.
    orientation:
        Sweep orientation chosen: ``"rows"`` (default) or ``"columns"``
        (RAO transposed the problem).
    elapsed_seconds:
        Wall-clock time of the sweep proper (excludes normalization and
        index construction in the caller).
    rows_per_sec:
        ``rows / elapsed_seconds`` — the scaling metric the parallel
        benchmark reports.
    phases:
        Phase name -> total seconds (e.g. ``"sweep.envelope_update"``,
        ``"sweep.endpoint_bucket"``, ``"sweep.prefix_sweep"``,
        ``"index_build"``); empty unless a recorder was attached.
    counters:
        Counter name -> value (e.g. ``"sweep.rows"``,
        ``"sweep.envelope_points"``); empty unless a recorder was attached.
    """

    rows: int
    blocks: int
    workers: int
    backend: str
    orientation: str
    elapsed_seconds: float
    rows_per_sec: float
    phases: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class KDVResult:
    """The outcome of one KDV computation.

    Attributes
    ----------
    grid:
        ``(Y, X)`` float64 density values; row 0 is the *southernmost* pixel
        row (ascending y).  Use :meth:`grid_image` for the screen-oriented
        (north-up) view.
    raster:
        The pixel raster the grid was evaluated on.
    kernel:
        Kernel name.
    bandwidth:
        The bandwidth ``b`` used, in world units.
    method:
        Method registry name (e.g. ``"slam_bucket_rao"``).
    normalization:
        The normalization mode applied to the raw kernel sums.
    n_points:
        Dataset size the grid was computed from.
    exact:
        Whether the method guarantees exact density values.
    stats:
        Optional :class:`SweepStats` instrumentation; populated by the SLAM
        sweep methods, ``None`` for baselines and empty-dataset short
        circuits.
    recorder:
        The :class:`~repro.obs.Recorder` the computation ran under, when one
        was attached (``collect_stats=True`` or an explicit ``recorder=``);
        ``None`` otherwise.  ``recorder.snapshot()`` is the machine-readable
        dump embedded in benchmark reports; ``recorder.summary()`` is the
        human-readable view the CLI's ``--stats`` flag prints.
    """

    grid: np.ndarray
    raster: Raster
    kernel: str
    bandwidth: float
    method: str
    normalization: str
    n_points: int
    exact: bool
    stats: SweepStats | None = None
    recorder: Recorder | None = None

    @property
    def shape(self) -> tuple[int, int]:
        return self.grid.shape

    def grid_image(self) -> np.ndarray:
        """The grid flipped to screen orientation (row 0 = northernmost)."""
        return self.grid[::-1]

    def max_density(self) -> float:
        return float(self.grid.max()) if self.grid.size else 0.0

    def hotspot_pixels(self, quantile: float = 0.99) -> np.ndarray:
        """Boolean mask of pixels at or above the given density quantile.

        A simple hotspot-detection helper: the paper's Figure 1 colors the
        top densities red; this returns that mask for downstream analysis.
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        positive = self.grid[self.grid > 0]
        if positive.size == 0:
            return np.zeros_like(self.grid, dtype=bool)
        threshold = np.quantile(positive, quantile)
        return self.grid >= threshold

    def to_image(self, colormap: str = "heat"):
        """Render through a colormap; see :mod:`repro.viz.colormap`."""
        from ..viz.colormap import apply_colormap

        return apply_colormap(self.grid_image(), colormap)

    def save_ppm(self, path: str, colormap: str = "heat") -> None:
        """Write the rendered heat map as a binary PPM file."""
        from ..viz.image import write_ppm

        write_ppm(path, self.to_image(colormap))
