"""The ``native`` engine: fused C bucket sweep with OpenMP row parallelism.

:mod:`repro.core._native_sweep` (an optional C extension, built on a
best-effort basis by ``setup.py``) implements the whole bucket sweep as one
fused per-row loop — binary-search envelope extraction, arithmetic bucket
assignment, difference-row accumulation, and the prefix sweep + kernel
recombination — with no intermediate tensors, parallelized across rows with
OpenMP.  This module wraps it in the same duck-typed ``sweep_block`` engine
interface as :class:`repro.core.batch.NumpyBatchEngine`, so the shared
drivers (:func:`repro.core.sweep.sweep_rows_batched`, the dist worker, the
RAO wrapper) need no special cases.

Optional-build semantics
------------------------
The extension import is attempted once at module import.  When it is absent
(no C toolchain, or ``REPRO_BUILD_NATIVE=0`` at build time) this module still
imports cleanly: :data:`NATIVE_AVAILABLE` is ``False``, the ``"native"`` name
is simply not registered in the engine tables, and requesting it raises the
standard unknown-engine error naming the engines that *are* available.  See
``docs/native.md`` for build instructions and the fallback matrix.

Thread model
------------
The C loop parallelizes across rows *inside* one ``sweep_block`` call, so the
``workers`` kwarg maps to OpenMP threads (:func:`native_grid` resolves it via
the same :func:`repro.core.parallel.resolve_workers` as the other engines)
and the Python-level block executor always receives ``workers=1`` — there is
nothing left for it to parallelize.  ``backend="dist"`` still routes through
the coordinator: the spec from :func:`repro.dist.worker.engine_spec` carries
the thread count to each worker.

Bit-identity: the extension replicates ``slam_bucket_row_numpy``'s exact
floating-point operand order (see the C source) and is pinned bit-identical
by ``tests/test_native.py`` and the ``tests/test_batch.py`` parity matrix.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..obs import Recorder
from .batch import NumpyBatchEngine
from .envelope import YSortedIndex
from .kernels import Kernel
from .parallel import resolve_workers
from .sweep import sweep_kdv

try:  # pragma: no cover - exercised via the availability tests
    from . import _native_sweep as _impl
except ImportError:  # the wheel-less / toolchain-less checkout
    _impl = None

__all__ = [
    "NATIVE_AVAILABLE",
    "NATIVE_OPENMP",
    "NativeEngine",
    "native_grid",
    "native_max_threads",
]

#: ``True`` when the C extension imported; the ``"native"`` engine-table
#: entries exist only in that case.
NATIVE_AVAILABLE = _impl is not None

#: ``True`` when the extension was additionally compiled with OpenMP (row
#: parallelism); without it the engine still runs, single-threaded.
NATIVE_OPENMP = bool(getattr(_impl, "OPENMP", 0))

#: Kernel name -> C kernel id (mirrors the C source's KERNEL_* defines).
_KERNEL_IDS = {"uniform": 0, "epanechnikov": 1, "quartic": 2}


def native_max_threads() -> int:
    """The OpenMP thread budget (1 when unavailable or OpenMP-less)."""
    if _impl is None:
        return 1
    return int(_impl.max_threads())


def _unavailable_error() -> RuntimeError:
    return RuntimeError(
        "the native sweep extension (repro.core._native_sweep) is not "
        "built; run `python setup.py build_ext --inplace` with a C "
        "toolchain, or use the numpy_batch engine (bit-identical, pure "
        "python) — see docs/native.md"
    )


class NativeEngine:
    """Whole-block sweep engine backed by the fused C loop.

    Duck-typed on ``sweep_block`` like
    :class:`~repro.core.batch.NumpyBatchEngine`, and bit-identical to it (and
    to ``slam_bucket_row_numpy``) by the extension's operand-order contract.
    ``threads`` is the OpenMP row-parallelism width for each block; with 1
    (or an OpenMP-less build) the C loop runs serially — still fused, still
    allocation-free.
    """

    def __init__(self, threads: int = 1):
        if not NATIVE_AVAILABLE:
            raise _unavailable_error()
        self.threads = max(1, int(threads))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NativeEngine(threads={self.threads})"

    def sweep_block(
        self,
        start: int,
        stop: int,
        y_centers: np.ndarray,
        xs_scaled: np.ndarray,
        ysorted: YSortedIndex,
        cx: float,
        bandwidth: float,
        kernel: Kernel,
        sorted_weights: np.ndarray | None = None,
        recorder: "Recorder | None" = None,
    ) -> np.ndarray:
        """Compute the pixel-row block ``[start, stop)`` in one C call.

        Same contract as :meth:`NumpyBatchEngine.sweep_block`, including the
        recorder semantics: counters and phase call counts equal the serial
        loop's (phase *seconds* reflect the fused loop, which cannot split
        its time between the bucket and prefix phases — the whole compute is
        attributed to ``sweep.prefix_sweep``).
        """
        if kernel.name not in _KERNEL_IDS:
            raise ValueError(
                "engine 'native' supports the built-in SLAM kernels "
                f"(uniform, epanechnikov, quartic); got {kernel.name!r}"
            )
        num_rows = stop - start
        if num_rows <= 0 or len(xs_scaled) == 0:
            return np.zeros((max(num_rows, 0), len(xs_scaled)), dtype=np.float64)
        # The C loop stores every pixel (empty-envelope rows are memset), so
        # the output need not be pre-zeroed.
        out = np.empty((num_rows, len(xs_scaled)), dtype=np.float64)

        rec = recorder
        t0 = perf_counter() if rec is not None else 0.0
        ks = np.ascontiguousarray(y_centers[start:stop], dtype=np.float64)
        xs = np.ascontiguousarray(xs_scaled, dtype=np.float64)
        xy = ysorted.sorted_xy
        if xy.dtype != np.float64 or not xy.flags["C_CONTIGUOUS"]:
            xy = np.ascontiguousarray(xy, dtype=np.float64)
        weights = (
            None
            if sorted_weights is None
            else np.ascontiguousarray(sorted_weights, dtype=np.float64)
        )
        _impl.sweep(
            out,
            ks,
            xs,
            xy,
            weights,
            float(cx),
            float(bandwidth),
            _KERNEL_IDS[kernel.name],
            self.threads,
        )
        if rec is not None:
            sweep_seconds = perf_counter() - t0
            t1 = perf_counter()
            # Counter parity with the serial loop costs two searchsorted
            # calls — only paid when a recorder is attached.
            lo = np.searchsorted(ysorted.sorted_y, ks - bandwidth, side="left")
            hi = np.searchsorted(ysorted.sorted_y, ks + bandwidth, side="right")
            counts = hi - lo
            NumpyBatchEngine._flush_recorder(
                rec,
                num_rows,
                int(np.count_nonzero(counts)),
                int(counts.sum()),
                perf_counter() - t1,  # envelope accounting overhead
                0.0,  # bucket/prefix time is fused; see docstring
                sweep_seconds,
            )
        return out


def native_grid(
    xy: np.ndarray,
    raster,
    kernel: Kernel,
    bandwidth: float,
    ysorted: YSortedIndex | None = None,
    weights: np.ndarray | None = None,
    workers: "int | str | None" = 1,
    backend: str = "process",
    stats: dict | None = None,
    recorder: "Recorder | None" = None,
    coordinator=None,
    threads: "int | None" = None,
) -> np.ndarray:
    """Grid-level ``native`` compute function (engine-table entry).

    ``workers`` becomes the OpenMP thread count (``"auto"`` resolves to the
    CPU count exactly like the other engines); ``threads`` overrides it
    explicitly.  ``backend`` is accepted for signature uniformity — row
    parallelism happens inside the C loop, so the in-process executors have
    nothing to do — except ``backend="dist"``, which shards across a
    :class:`repro.dist.Coordinator` pool as usual, each worker running the
    native engine (or its bit-identical ``numpy_batch`` fallback when the
    worker's checkout has no compiled extension).
    """
    if not NATIVE_AVAILABLE:
        raise _unavailable_error()
    nthreads = resolve_workers(workers) if threads is None else max(1, int(threads))
    engine = NativeEngine(threads=nthreads)
    if backend == "dist":
        return sweep_kdv(
            xy, raster, kernel, bandwidth, engine,
            ysorted=ysorted, weights=weights, workers=workers,
            backend=backend, stats=stats, recorder=recorder,
            coordinator=coordinator,
        )
    grid = sweep_kdv(
        xy, raster, kernel, bandwidth, engine,
        ysorted=ysorted, weights=weights, workers=1, backend="thread",
        stats=stats, recorder=recorder, coordinator=coordinator,
    )
    if stats is not None:
        # Report the realized parallelism, not the block executor's.
        stats["workers"] = nthreads
        stats["backend"] = "openmp" if nthreads > 1 else "serial"
    return grid
