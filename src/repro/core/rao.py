"""Resolution-aware optimization (RAO, paper Section 3.6).

The per-row cost of a SLAM sweep multiplies the *number of rows* by the
per-row envelope work, so when the raster is taller than it is wide
(``Y > X``) it is cheaper to sweep along columns instead: evaluate all pixels
sharing an *x*-coordinate in one sweep.  RAO simply picks the orientation with
fewer sweeps, giving ``O(min(X, Y) * (max(X, Y) + n))`` for
SLAM_BUCKET^(RAO) (Theorem 3) with no extra space (Theorem 4).

Implementation: the kernels of Table 2 depend only on Euclidean distance, so
swapping the x/y coordinates of both the points and the raster leaves every
density value unchanged.  A column sweep is therefore a row sweep on the
transposed problem, and the result grid transposes back.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..obs import Recorder, active
from ..viz.region import Raster
from .kernels import Kernel

__all__ = ["with_rao", "rao_orientation"]


def rao_orientation(raster: Raster) -> str:
    """Which sweep orientation RAO picks: ``"rows"`` when ``X >= Y`` (the
    default of Section 3.4/3.5), else ``"columns"``."""
    return "rows" if raster.width >= raster.height else "columns"


def with_rao(grid_fn: Callable[..., np.ndarray]) -> Callable[..., np.ndarray]:
    """Wrap a row-sweeping grid function with the RAO orientation choice.

    The wrapped function has the same signature as the base grid functions
    (``xy, raster, kernel, bandwidth``); extra keyword arguments (e.g. the
    batch engine's ``max_block_bytes``) pass through untouched.  A
    caller-supplied ``ysorted`` index is honored in *both* orientations: a
    column sweep runs on the transposed problem, which sorts by the other
    coordinate, so the wrapper forwards the index's cached coordinate-swapped
    twin (:meth:`repro.core.envelope.YSortedIndex.transposed`) instead of
    silently dropping the index and re-sorting.
    """

    def rao_grid(
        xy: np.ndarray,
        raster: Raster,
        kernel: Kernel,
        bandwidth: float,
        ysorted=None,
        weights: np.ndarray | None = None,
        workers: "int | str | None" = 1,
        backend: str = "process",
        stats: dict | None = None,
        recorder: "Recorder | None" = None,
        **kwargs,
    ) -> np.ndarray:
        orientation = rao_orientation(raster)
        if stats is not None:
            stats["orientation"] = orientation
        rec = active(recorder)
        if rec is not None:
            rec.count(f"rao.{orientation}_sweeps")
        if orientation == "rows":
            return grid_fn(
                xy,
                raster,
                kernel,
                bandwidth,
                ysorted=ysorted,
                weights=weights,
                workers=workers,
                backend=backend,
                stats=stats,
                recorder=recorder,
                **kwargs,
            )
        xy_swapped = np.asarray(xy, dtype=np.float64)[:, ::-1]
        transposed = grid_fn(
            xy_swapped,
            raster.transposed(),
            kernel,
            bandwidth,
            ysorted=None if ysorted is None else ysorted.transposed(),
            weights=weights,
            workers=workers,
            backend=backend,
            stats=stats,
            recorder=recorder,
            **kwargs,
        )
        return np.ascontiguousarray(transposed.T)

    return rao_grid
