"""Shared row-sweep driver for the SLAM algorithms.

Both SLAM variants process the raster one pixel row at a time (paper
Figure 4): extract the envelope point set ``E(k)`` for the row's y-coordinate
``k``, turn each envelope point into an x-interval ``[LB_k(p), UB_k(p)]``
(Section 3.3), and hand the intervals plus the row's pixel x-centers to a
*row engine* that performs the actual sweep.  The engines differ only in how
they order interval endpoints against pixels — sorting (Algorithm 1) versus
bucketing (Algorithm 2) — so everything else lives here.

Numerical conditioning
----------------------
The aggregate recombination (Equation 5 and the quartic expansion) subtracts
large like-sized terms, so raw projected coordinates (|x| up to 1e6 m) would
lose precision.  The driver therefore evaluates every row in a *scaled local
frame*: coordinates are shifted so the row center is the origin and divided by
the bandwidth.  Distances scale by ``1/b``, so the engines evaluate kernels
with bandwidth 1; densities are invariant because the kernels of Table 2
depend only on ``dist/b``.  This changes nothing algorithmically — it is a
units change — and keeps every intermediate quantity O((W/b)^2).

Parallel execution
------------------
Rows are independent (the paper's per-row decomposition shares only read-only
state: the y-sorted index and the scaled pixel centers), so the driver can
hand contiguous *row blocks* to :mod:`repro.core.parallel` and assemble the
results.  Each row is computed by exactly the same code in exactly the same
floating-point order regardless of blocking, so any ``workers`` setting —
including ``workers=1``, which bypasses the executor entirely — produces
bit-identical grids.
"""

from __future__ import annotations

import time
from typing import Callable, Protocol

import numpy as np

from ..obs import NULL_RECORDER, Recorder, active
from ..viz.region import Raster
from .envelope import YSortedIndex
from .kernels import Kernel, channel_values
from .parallel import resolve_workers, run_blocks, validate_backend

__all__ = [
    "RowEngine",
    "sweep_kdv",
    "sweep_rows",
    "sweep_rows_batched",
    "row_frame",
    "PHASE_ENVELOPE_UPDATE",
    "PHASE_ENDPOINT_SORT",
    "PHASE_ENDPOINT_BUCKET",
    "PHASE_PREFIX_SWEEP",
]

# Observability phase names shared by the sweep driver and the engines
# (see docs/observability.md).  They live here — the one module every
# engine already imports — so the engines and the block-batched engine in
# :mod:`repro.core.batch` can share them without circular imports;
# ``slam_sort`` / ``slam_bucket`` re-export them for compatibility.
PHASE_ENVELOPE_UPDATE = "sweep.envelope_update"
PHASE_ENDPOINT_SORT = "sweep.endpoint_sort"
PHASE_ENDPOINT_BUCKET = "sweep.endpoint_bucket"
PHASE_PREFIX_SWEEP = "sweep.prefix_sweep"


class RowEngine(Protocol):
    """Signature of a per-row sweep implementation.

    All inputs are in the scaled local frame (bandwidth 1, row at y = 0):

    ``xs``     -- pixel-center x coordinates, strictly increasing, shape (X,)
    ``lb/ub``  -- interval endpoints per envelope point, shape (m,)
    ``chans``  -- aggregate channel values per envelope point, shape (m, nch)
    ``kernel`` -- the kernel whose aggregates ``chans`` encodes
    ``recorder`` -- optional :class:`~repro.obs.Recorder`; when attached the
    engine accumulates its endpoint-ordering and prefix-sweep phase timings
    into it (``None``, the default, skips all timing)

    Returns the row's ``sum_{p in R(q)} K(q, p)`` values, shape (X,).
    """

    def __call__(
        self,
        xs: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        chans: np.ndarray,
        kernel: Kernel,
        recorder: "Recorder | None" = None,
    ) -> np.ndarray: ...


def row_frame(
    envelope_xy: np.ndarray, k: float, cx: float, bandwidth: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map a row's envelope points into the scaled local frame.

    Returns ``(u, v, half)`` where ``(u, v)`` are the scaled coordinates
    relative to ``(cx, k)`` and ``half`` is the scaled interval half-width
    ``sqrt(1 - v^2)`` so that ``lb = u - half`` and ``ub = u + half``
    (the scaled form of paper Equations 8-9).
    """
    u = (envelope_xy[:, 0] - cx) / bandwidth
    v = (envelope_xy[:, 1] - k) / bandwidth
    radicand = 1.0 - v * v
    # Envelope membership guarantees |v| <= 1; clamp the tiny negative values
    # float rounding can produce at the envelope boundary.
    np.clip(radicand, 0.0, None, out=radicand)
    return u, v, np.sqrt(radicand)


def sweep_rows(
    start: int,
    stop: int,
    y_centers: np.ndarray,
    xs_scaled: np.ndarray,
    ysorted: YSortedIndex,
    cx: float,
    bandwidth: float,
    kernel: Kernel,
    row_engine: RowEngine,
    sorted_weights: np.ndarray | None = None,
    recorder: "Recorder | None" = None,
) -> np.ndarray:
    """Compute the contiguous pixel-row block ``[start, stop)`` of a sweep.

    Pure function of its arguments — all inputs are read-only shared state
    (the y-sorted index, the scaled pixel x-centers) plus the block bounds, so
    blocks can be evaluated in any order, on any thread, or in a worker
    process, and always yield the same ``(stop - start, X)`` float64 array.
    The result is *unscaled*: :func:`sweep_kdv` applies the kernel's rescale
    factor once after assembling all blocks.

    When ``recorder`` is attached the block accumulates counters
    (``sweep.rows``, ``sweep.empty_rows``, ``sweep.envelope_points``) and the
    ``sweep.envelope_update`` phase timer, and passes the recorder into the
    row engine for its per-phase breakdown.  With ``recorder=None`` (the
    default) the loop below runs untouched — no clock reads, no allocations.
    """
    nch = kernel.num_channels
    block = np.zeros((stop - start, len(xs_scaled)), dtype=np.float64)
    rec = active(recorder)
    if rec is None:
        for j in range(start, stop):
            k = y_centers[j]
            env_slice = ysorted.envelope_slice(k, bandwidth)
            env = ysorted.sorted_xy[env_slice]
            if len(env) == 0:
                continue
            u, v, half = row_frame(env, k, cx, bandwidth)
            row_weights = None if sorted_weights is None else sorted_weights[env_slice]
            chans = channel_values(np.column_stack((u, v)), nch, weights=row_weights)
            block[j - start] = row_engine(xs_scaled, u - half, u + half, chans, kernel)
        return block

    # Instrumented twin of the loop above: identical arithmetic in identical
    # order (the bit-identity contract), plus clocks and counters.  Local
    # accumulators flush into the recorder once per block so the recorder
    # lock is not taken per row.
    perf = time.perf_counter
    envelope_seconds = 0.0
    envelope_points = 0
    empty_rows = 0
    for j in range(start, stop):
        k = y_centers[j]
        t0 = perf()
        env_slice = ysorted.envelope_slice(k, bandwidth)
        env = ysorted.sorted_xy[env_slice]
        if len(env) == 0:
            envelope_seconds += perf() - t0
            empty_rows += 1
            continue
        u, v, half = row_frame(env, k, cx, bandwidth)
        row_weights = None if sorted_weights is None else sorted_weights[env_slice]
        chans = channel_values(np.column_stack((u, v)), nch, weights=row_weights)
        envelope_seconds += perf() - t0
        envelope_points += len(env)
        block[j - start] = row_engine(
            xs_scaled, u - half, u + half, chans, kernel, recorder=rec
        )
    rows = stop - start
    rec.count("sweep.rows", rows)
    rec.count("sweep.empty_rows", empty_rows)
    rec.count("sweep.envelope_points", envelope_points)
    rec.timer(PHASE_ENVELOPE_UPDATE).add(envelope_seconds, rows)
    return block


def sweep_rows_batched(
    start: int,
    stop: int,
    y_centers: np.ndarray,
    xs_scaled: np.ndarray,
    ysorted: YSortedIndex,
    cx: float,
    bandwidth: float,
    kernel: Kernel,
    row_engine,
    sorted_weights: np.ndarray | None = None,
    recorder: "Recorder | None" = None,
) -> np.ndarray:
    """Block-batched twin of :func:`sweep_rows` for whole-block engines.

    Same signature and same contract — a pure function of read-only shared
    state returning the ``(stop - start, X)`` unscaled block — but instead of
    looping over rows in Python it hands the *entire block* to the engine's
    ``sweep_block`` method (see :class:`repro.core.batch.NumpyBatchEngine`),
    which computes all rows in a handful of whole-block array operations.
    Because the batch engine emits (row, point) pairs in exactly the per-row
    order of the serial loop, the result is bit-identical to
    :func:`sweep_rows` with ``slam_bucket_row_numpy``.
    """
    return row_engine.sweep_block(
        start,
        stop,
        y_centers,
        xs_scaled,
        ysorted,
        cx,
        bandwidth,
        kernel,
        sorted_weights=sorted_weights,
        recorder=active(recorder),
    )


def _sweep_rows_recorded(start: int, stop: int, *args, **kwargs):
    """Picklable parallel-block wrapper: run :func:`sweep_rows` under a fresh
    per-block recorder and ship its snapshot back with the block.

    Worker threads and processes never share the caller's recorder; the
    parent merges the returned snapshots, so merged counters equal the serial
    sweep's counts exactly (see :meth:`repro.obs.Recorder.merge`).
    """
    recorder = Recorder()
    block = sweep_rows(start, stop, *args, recorder=recorder, **kwargs)
    return block, recorder.snapshot()


def _sweep_rows_batched_recorded(start: int, stop: int, *args, **kwargs):
    """Per-block recorder wrapper for :func:`sweep_rows_batched` (picklable)."""
    recorder = Recorder()
    block = sweep_rows_batched(start, stop, *args, recorder=recorder, **kwargs)
    return block, recorder.snapshot()


def sweep_kdv(
    xy: np.ndarray,
    raster: Raster,
    kernel: Kernel,
    bandwidth: float,
    row_engine: RowEngine,
    ysorted: YSortedIndex | None = None,
    weights: np.ndarray | None = None,
    workers: "int | str | None" = 1,
    backend: str = "process",
    stats: dict | None = None,
    recorder: "Recorder | None" = None,
    coordinator=None,
) -> np.ndarray:
    """Compute the raw KDV grid ``sum_p w_p K(q, p)`` with a row-sweep engine.

    Parameters
    ----------
    xy:
        ``(n, 2)`` point coordinates.
    raster:
        The pixel grid to evaluate.
    kernel:
        A finite-support kernel with an aggregate decomposition.
    bandwidth:
        The kernel bandwidth ``b`` in world units.
    row_engine:
        One of the SLAM per-row implementations (a :class:`RowEngine`
        callable), or a whole-block engine exposing a ``sweep_block`` method
        (e.g. :class:`repro.core.batch.NumpyBatchEngine`), which is handed
        entire row blocks via :func:`sweep_rows_batched` instead of being
        called once per row.
    ysorted:
        Optional pre-built y-sorted index (reused across exploratory calls).
    weights:
        Optional ``(n,)`` per-point weights (w_p = 1 when omitted).  Weighting
        scales each point's aggregate channels, so the sweep itself is
        unchanged and the complexity guarantees still hold.
    workers:
        ``1`` (default) runs the serial sweep; an integer > 1 dispatches row
        blocks to that many workers; ``"auto"`` uses the CPU count.  Any
        setting produces a bit-identical grid.
    backend:
        ``"process"`` (default; sidesteps the GIL for the python engine),
        ``"thread"`` (cheaper startup; effective for the numpy engine, whose
        heavy array ops release the GIL), or ``"dist"`` (shards dispatched
        to external worker processes via a :mod:`repro.dist` coordinator —
        see the ``coordinator`` parameter).  ``process``/``thread`` are
        ignored when one worker resolves; ``dist`` always routes through the
        coordinator, sharding by ``workers`` when it is > 1 and by the
        coordinator's own default otherwise.
    stats:
        Optional dict that receives lightweight instrumentation: ``rows``,
        ``blocks``, ``workers``, ``backend``, ``elapsed_seconds``,
        ``rows_per_sec``.
    recorder:
        Optional :class:`~repro.obs.Recorder`.  When attached, the sweep
        records the ``index_build`` and ``sweep`` spans, per-phase timers
        (``sweep.envelope_update`` plus the engine's endpoint-ordering and
        prefix-sweep phases), and row/envelope counters.  In parallel runs
        each block records into a private recorder whose snapshot is merged
        back here, so counts equal the serial sweep's.  ``None`` (default)
        disables all instrumentation at zero cost.
    coordinator:
        Optional :class:`repro.dist.Coordinator` used when
        ``backend="dist"``.  ``None`` resolves one via
        :func:`repro.dist.coordinator.resolve_coordinator` (process default,
        then the ``REPRO_DIST_WORKERS`` environment variable, then a
        worker-less coordinator computing shards in-process).  Ignored for
        the in-process backends.

    Returns
    -------
    ``(Y, X)`` float64 grid of un-normalized density values.
    """
    if kernel.num_channels is None:
        raise ValueError(
            f"kernel {kernel.name!r} has no aggregate decomposition; "
            "SLAM supports uniform, epanechnikov, and quartic kernels"
        )
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    num_workers = resolve_workers(workers)
    validate_backend(backend)
    rec = active(recorder)
    xy = np.asarray(xy, dtype=np.float64)
    if ysorted is None:
        if rec is not None:
            with rec.span("index_build"):
                ysorted = YSortedIndex(xy)
        else:
            ysorted = YSortedIndex(xy)
    sorted_weights = None
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(xy),):
            raise ValueError(
                f"weights must have shape ({len(xy)},), got {weights.shape}"
            )
        sorted_weights = weights[ysorted.order]

    cx = (raster.region.xmin + raster.region.xmax) / 2.0
    xs_scaled = (raster.x_centers() - cx) / bandwidth
    y_centers = raster.y_centers()
    height = raster.height

    t0 = time.perf_counter()
    row_args = (y_centers, xs_scaled, ysorted, cx, bandwidth, kernel, row_engine)
    row_kwargs = {"sorted_weights": sorted_weights}
    # Whole-block engines (duck-typed on `sweep_block`, e.g. the numpy_batch
    # engine) replace the per-row Python loop with the batched driver; the
    # block partitioning, worker dispatch, and recorder merging are shared.
    if hasattr(row_engine, "sweep_block"):
        block_fn, block_fn_recorded = sweep_rows_batched, _sweep_rows_batched_recorded
    else:
        block_fn, block_fn_recorded = sweep_rows, _sweep_rows_recorded
    with (rec or NULL_RECORDER).span("sweep"):
        if backend == "dist":
            # Distributed dispatch: the coordinator plans row shards over
            # the same precomputed geometry and merges worker blocks by row
            # band, so the result is bit-identical to the serial branch
            # below (see repro.dist.plan for the argument).  Imported lazily
            # so the core sweep has no hard dependency on the dist tier.
            from ..dist.coordinator import resolve_coordinator
            from ..dist.worker import engine_spec

            coord = resolve_coordinator(coordinator)
            num_blocks, grid, snapshots = coord.render_sweep(
                ysorted=ysorted,
                y_centers=y_centers,
                xs_scaled=xs_scaled,
                cx=cx,
                bandwidth=bandwidth,
                kernel=kernel,
                engine=engine_spec(row_engine),
                sorted_weights=sorted_weights,
                shards=num_workers if num_workers > 1 else None,
                collect=rec is not None,
            )
            if rec is not None:
                for snap in snapshots:
                    rec.merge(snap)
        elif num_workers == 1:
            grid = block_fn(0, height, *row_args, recorder=rec, **row_kwargs)
            num_blocks = 1
        elif rec is None:
            num_blocks, grid, _aux = run_blocks(
                block_fn, row_args, row_kwargs, height, num_workers, backend
            )
        else:
            # Each block records into a private recorder; merging the
            # returned snapshots reproduces the serial counts exactly.
            num_blocks, grid, snapshots = run_blocks(
                block_fn_recorded, row_args, row_kwargs,
                height, num_workers, backend,
            )
            for snap in snapshots:
                rec.merge(snap)
    elapsed = time.perf_counter() - t0

    # Undo the bandwidth scaling for kernels whose value depends on b
    # directly (the uniform kernel's 1/b plateau); see Kernel.rescale_factor.
    factor = kernel.rescale_factor(bandwidth)
    if factor != 1.0:
        grid *= factor
    if rec is not None:
        rec.count("sweep.blocks", num_blocks)
    if stats is not None:
        stats.update(
            rows=height,
            blocks=num_blocks,
            workers=num_workers,
            backend=backend
            if backend == "dist"
            else ("serial" if num_workers == 1 else backend),
            elapsed_seconds=elapsed,
            rows_per_sec=height / elapsed if elapsed > 0 else float("inf"),
        )
    return grid


def make_grid_function(row_engine: RowEngine) -> Callable[..., np.ndarray]:
    """Bind a row engine into a grid-level compute function."""

    def grid_fn(
        xy: np.ndarray,
        raster: Raster,
        kernel: Kernel,
        bandwidth: float,
        ysorted: YSortedIndex | None = None,
        weights: np.ndarray | None = None,
        workers: "int | str | None" = 1,
        backend: str = "process",
        stats: dict | None = None,
        recorder: "Recorder | None" = None,
        coordinator=None,
    ) -> np.ndarray:
        return sweep_kdv(
            xy,
            raster,
            kernel,
            bandwidth,
            row_engine,
            ysorted=ysorted,
            weights=weights,
            workers=workers,
            backend=backend,
            stats=stats,
            recorder=recorder,
            coordinator=coordinator,
        )

    return grid_fn
