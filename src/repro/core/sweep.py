"""Shared row-sweep driver for the SLAM algorithms.

Both SLAM variants process the raster one pixel row at a time (paper
Figure 4): extract the envelope point set ``E(k)`` for the row's y-coordinate
``k``, turn each envelope point into an x-interval ``[LB_k(p), UB_k(p)]``
(Section 3.3), and hand the intervals plus the row's pixel x-centers to a
*row engine* that performs the actual sweep.  The engines differ only in how
they order interval endpoints against pixels — sorting (Algorithm 1) versus
bucketing (Algorithm 2) — so everything else lives here.

Numerical conditioning
----------------------
The aggregate recombination (Equation 5 and the quartic expansion) subtracts
large like-sized terms, so raw projected coordinates (|x| up to 1e6 m) would
lose precision.  The driver therefore evaluates every row in a *scaled local
frame*: coordinates are shifted so the row center is the origin and divided by
the bandwidth.  Distances scale by ``1/b``, so the engines evaluate kernels
with bandwidth 1; densities are invariant because the kernels of Table 2
depend only on ``dist/b``.  This changes nothing algorithmically — it is a
units change — and keeps every intermediate quantity O((W/b)^2).
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..viz.region import Raster
from .envelope import YSortedIndex
from .kernels import Kernel, channel_values

__all__ = ["RowEngine", "sweep_kdv", "row_frame"]


class RowEngine(Protocol):
    """Signature of a per-row sweep implementation.

    All inputs are in the scaled local frame (bandwidth 1, row at y = 0):

    ``xs``     -- pixel-center x coordinates, strictly increasing, shape (X,)
    ``lb/ub``  -- interval endpoints per envelope point, shape (m,)
    ``chans``  -- aggregate channel values per envelope point, shape (m, nch)
    ``kernel`` -- the kernel whose aggregates ``chans`` encodes

    Returns the row's ``sum_{p in R(q)} K(q, p)`` values, shape (X,).
    """

    def __call__(
        self,
        xs: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        chans: np.ndarray,
        kernel: Kernel,
    ) -> np.ndarray: ...


def row_frame(
    envelope_xy: np.ndarray, k: float, cx: float, bandwidth: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map a row's envelope points into the scaled local frame.

    Returns ``(u, v, half)`` where ``(u, v)`` are the scaled coordinates
    relative to ``(cx, k)`` and ``half`` is the scaled interval half-width
    ``sqrt(1 - v^2)`` so that ``lb = u - half`` and ``ub = u + half``
    (the scaled form of paper Equations 8-9).
    """
    u = (envelope_xy[:, 0] - cx) / bandwidth
    v = (envelope_xy[:, 1] - k) / bandwidth
    radicand = 1.0 - v * v
    # Envelope membership guarantees |v| <= 1; clamp the tiny negative values
    # float rounding can produce at the envelope boundary.
    np.clip(radicand, 0.0, None, out=radicand)
    return u, v, np.sqrt(radicand)


def sweep_kdv(
    xy: np.ndarray,
    raster: Raster,
    kernel: Kernel,
    bandwidth: float,
    row_engine: RowEngine,
    ysorted: YSortedIndex | None = None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Compute the raw KDV grid ``sum_p w_p K(q, p)`` with a row-sweep engine.

    Parameters
    ----------
    xy:
        ``(n, 2)`` point coordinates.
    raster:
        The pixel grid to evaluate.
    kernel:
        A finite-support kernel with an aggregate decomposition.
    bandwidth:
        The kernel bandwidth ``b`` in world units.
    row_engine:
        One of the SLAM row implementations.
    ysorted:
        Optional pre-built y-sorted index (reused across exploratory calls).
    weights:
        Optional ``(n,)`` per-point weights (w_p = 1 when omitted).  Weighting
        scales each point's aggregate channels, so the sweep itself is
        unchanged and the complexity guarantees still hold.

    Returns
    -------
    ``(Y, X)`` float64 grid of un-normalized density values.
    """
    if kernel.num_channels is None:
        raise ValueError(
            f"kernel {kernel.name!r} has no aggregate decomposition; "
            "SLAM supports uniform, epanechnikov, and quartic kernels"
        )
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    xy = np.asarray(xy, dtype=np.float64)
    if ysorted is None:
        ysorted = YSortedIndex(xy)
    sorted_weights = None
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(xy),):
            raise ValueError(
                f"weights must have shape ({len(xy)},), got {weights.shape}"
            )
        sorted_weights = weights[ysorted.order]

    cx = (raster.region.xmin + raster.region.xmax) / 2.0
    xs_scaled = (raster.x_centers() - cx) / bandwidth
    grid = np.zeros(raster.shape, dtype=np.float64)
    nch = kernel.num_channels

    for j, k in enumerate(raster.y_centers()):
        env_slice = ysorted.envelope_slice(k, bandwidth)
        env = ysorted.sorted_xy[env_slice]
        if len(env) == 0:
            continue
        u, v, half = row_frame(env, k, cx, bandwidth)
        row_weights = None if sorted_weights is None else sorted_weights[env_slice]
        chans = channel_values(np.column_stack((u, v)), nch, weights=row_weights)
        grid[j] = row_engine(xs_scaled, u - half, u + half, chans, kernel)
    # Undo the bandwidth scaling for kernels whose value depends on b
    # directly (the uniform kernel's 1/b plateau); see Kernel.rescale_factor.
    factor = kernel.rescale_factor(bandwidth)
    if factor != 1.0:
        grid *= factor
    return grid


def make_grid_function(row_engine: RowEngine) -> Callable[..., np.ndarray]:
    """Bind a row engine into a grid-level compute function."""

    def grid_fn(
        xy: np.ndarray,
        raster: Raster,
        kernel: Kernel,
        bandwidth: float,
        ysorted: YSortedIndex | None = None,
        weights: np.ndarray | None = None,
    ) -> np.ndarray:
        return sweep_kdv(
            xy, raster, kernel, bandwidth, row_engine, ysorted=ysorted, weights=weights
        )

    return grid_fn
