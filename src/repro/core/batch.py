"""Block-vectorized batch sweep engine (``numpy_batch``).

The per-row drivers in :mod:`repro.core.sweep` execute a Python-level loop
over all ``Y`` pixel rows — each iteration doing an envelope slice,
``row_frame``, ``channel_values``, and a row-engine call, i.e. roughly fifty
NumPy dispatches per row.  At realistic resolutions that interpreter and
dispatch overhead is a fixed ~0.1 s tax per sweep, which dominates wall clock
whenever the envelopes are small (sharp bandwidths, the regime where SLAM's
per-row cost is lowest).  This module removes the loop: one engine call
computes an entire contiguous row block with a handful of whole-block array
operations.

The batched pipeline (mirroring the serial one stage for stage):

1. **Vectorized envelope extraction** — two ``searchsorted`` calls over the
   y-sorted index yield every row's ``[lo, hi)`` envelope slice at once;
   ``repeat``/``arange`` expand them into a flat ``(total_pairs,)`` array of
   (row, point) pairs, emitted in exactly the per-row order of the serial
   loop.
2. **One frame + channel evaluation for all pairs** — the scaled x offset
   ``u = (p.x - cx) / b`` (and ``u^2``) is row-independent, so it is computed
   once per *point* and gathered per pair; only ``v`` (and quantities built
   from it) is per-pair.  Today the serial loop recomputes these per row for
   every row a point's envelope covers — about ``2b/gy`` times per point.
3. **Bucket assignment for all pairs at once** — the same arithmetic
   ``bucket_indices`` as ``slam_bucket_row_numpy``, applied to the flat
   endpoint arrays.
4. **Scatter-add into a difference tensor** — ``np.bincount`` on the
   composite index ``row * (X + 1) + bucket`` accumulates every channel's
   deltas for all rows in one call; a single ``cumsum`` along x and one
   grid-level ``kernel.density_from_aggregates`` finish the block.

Bit-identity contract
---------------------
The batch engine is **bit-identical** to ``slam_bucket_row_numpy`` (pinned by
``tests/test_batch.py``, not hoped for), because every stage preserves the
serial computation's operand order:

* pairs are emitted row-major, and ``np.bincount`` accumulates its weights
  sequentially in input order, so each (row, bucket) cell sums the same
  values in the same order as the per-row bincount;
* ``cumsum`` along the x axis performs the same left-to-right additions;
* ``density_from_aggregates`` broadcasts over leading axes, so evaluating a
  ``(rows, X, nch)`` aggregate tensor is elementwise-identical to evaluating
  each row's ``(X, nch)`` slice.

Channels that the recombination multiplies only by ``qy`` are dead at
``qy = 0`` (the scaled local frame evaluates every row at y = 0): they
contribute exactly ``±0.0``, so the engine never builds them and the kernels'
``density_from_channel_map`` fast path never reads them — value-preserving
under ``==`` (and ``np.array_equal``), which treats ``-0.0 == +0.0``.

Memory bounding
---------------
Materializing all pairs of a tall block at once would thrash caches (and can
exceed RAM), so blocks are internally chunked by the ``max_block_bytes``
knob: chunk boundaries bound both the difference tensor
(``rows × (X+1) × nch`` float64) and the per-pair working set (about a dozen
float64/int64 arrays of ``total_pairs`` elements).  The default (2 MB) keeps
the per-chunk working set resident in the CPU cache — measured fastest
across 256 KB..16 MB — and chunking never changes results, because each
row's pairs stay contiguous and whole.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..obs import Recorder
from .bounds import bucket_indices
from .envelope import YSortedIndex
from .kernels import Kernel
from .sweep import (
    PHASE_ENDPOINT_BUCKET,
    PHASE_ENVELOPE_UPDATE,
    PHASE_PREFIX_SWEEP,
    sweep_kdv,
)

__all__ = ["NumpyBatchEngine", "numpy_batch_grid", "DEFAULT_MAX_BLOCK_BYTES"]

#: Default for the ``max_block_bytes`` chunking knob.  2 MB keeps a chunk's
#: difference arrays and pair working set resident in the CPU cache, where
#: the ~25 whole-chunk array passes run at cache bandwidth instead of DRAM
#: bandwidth — measured fastest across 256 KB..16 MB on the benchmark
#: workload.  Raising it trades locality for fewer chunk iterations.
DEFAULT_MAX_BLOCK_BYTES = 2 * 1024 * 1024

#: Bytes of per-pair working state: u, v, half, lb, ub, s, enter, leave and
#: assorted temporaries — about a dozen 8-byte arrays per pair.
_BYTES_PER_PAIR = 96

#: Channel indices whose recombination weight is a pure ``qy`` factor, making
#: them exactly ``±0.0`` at ``qy = 0`` (see module docstring): ``y`` (2) for
#: the Epanechnikov aggregates, plus ``s*y`` (5), ``x*y`` (8) and ``y*y`` (9)
#: for the quartic ones.  Keyed by kernel name; doubles as the registry of
#: kernels whose live-channel construction the engine hardcodes — unknown
#: kernels are rejected rather than silently miscomputed.
_DEAD_AT_QY0 = {
    "uniform": frozenset(),
    "epanechnikov": frozenset({2}),
    "quartic": frozenset({2, 5, 8, 9}),
}


class NumpyBatchEngine:
    """Whole-block sweep engine: all rows of a block in O(1) NumPy calls.

    Instances are stateless apart from the ``max_block_bytes`` knob, so they
    are trivially picklable and safe to share across the process/thread
    workers of :func:`repro.core.parallel.run_blocks` (the driver detects the
    ``sweep_block`` method and dispatches blocks through
    :func:`repro.core.sweep.sweep_rows_batched`).
    """

    def __init__(self, max_block_bytes: int = DEFAULT_MAX_BLOCK_BYTES):
        if max_block_bytes <= 0:
            raise ValueError(
                f"max_block_bytes must be positive, got {max_block_bytes}"
            )
        self.max_block_bytes = int(max_block_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NumpyBatchEngine(max_block_bytes={self.max_block_bytes})"

    def sweep_block(
        self,
        start: int,
        stop: int,
        y_centers: np.ndarray,
        xs_scaled: np.ndarray,
        ysorted: YSortedIndex,
        cx: float,
        bandwidth: float,
        kernel: Kernel,
        sorted_weights: np.ndarray | None = None,
        recorder: "Recorder | None" = None,
    ) -> np.ndarray:
        """Compute the pixel-row block ``[start, stop)`` — batched.

        Same inputs and output as :func:`repro.core.sweep.sweep_rows`; see
        the module docstring for the pipeline and the bit-identity argument.
        Recorder semantics match the serial loop's *totals*: the phase
        timers accumulate per chunk and flush once per block with call
        counts equal to the serial loop's (``sweep.envelope_update`` counts
        every row, the engine phases count non-empty rows), so merged
        parallel snapshots equal serial snapshots in every count.
        """
        num_pixels = len(xs_scaled)
        num_rows = stop - start
        nch = kernel.num_channels
        if kernel.name not in _DEAD_AT_QY0:
            # The channel construction below hardcodes which channels are
            # live at qy = 0 per kernel; refuse kernels it does not know.
            raise ValueError(
                "engine 'numpy_batch' supports the built-in SLAM kernels "
                f"(uniform, epanechnikov, quartic); got {kernel.name!r}"
            )
        out = np.zeros((num_rows, num_pixels), dtype=np.float64)
        if num_rows <= 0:
            return out

        rec = recorder
        perf = perf_counter
        envelope_seconds = 0.0
        bucket_seconds = 0.0
        sweep_seconds = 0.0
        t0 = perf() if rec is not None else 0.0

        # Stage 1: every row's envelope slice from two searchsorted calls,
        # plus the row-independent per-point precomputation.
        ks = y_centers[start:stop]
        sorted_y = ysorted.sorted_y
        lo_all = np.searchsorted(sorted_y, ks - bandwidth, side="left")
        hi_all = np.searchsorted(sorted_y, ks + bandwidth, side="right")
        counts_all = hi_all - lo_all
        point_u = (ysorted.sorted_xy[:, 0] - cx) / bandwidth
        point_u2 = point_u * point_u if nch > 1 else None

        nonempty_rows = int(np.count_nonzero(counts_all))
        total_pairs = int(counts_all.sum())
        if total_pairs == 0:
            if rec is not None:
                envelope_seconds += perf() - t0
                self._flush_recorder(
                    rec, num_rows, nonempty_rows, total_pairs,
                    envelope_seconds, bucket_seconds, sweep_seconds,
                )
            return out

        # Chunk boundaries: bound both the difference tensor and the pair
        # working set by max_block_bytes (see module docstring).  Boundaries
        # depend only on the envelope counts, so they are computed up front —
        # which also yields the largest chunk's pair count, letting the
        # per-pair scratch below be allocated once per block instead of once
        # per chunk (the repeated-temporary fix pinned by
        # tests/test_batch.py's tracemalloc bound).
        max_pairs = max(self.max_block_bytes // _BYTES_PER_PAIR, 1)
        max_chunk_rows = max(
            self.max_block_bytes // (8 * (num_pixels + 1) * nch), 1
        )
        cum_pairs = np.cumsum(counts_all)
        chunks: "list[tuple[int, int]]" = []
        cap = 0
        r0 = 0
        while r0 < num_rows:
            base = cum_pairs[r0 - 1] if r0 > 0 else 0
            r1 = int(
                np.searchsorted(cum_pairs, base + max_pairs, side="right")
            ) + 1
            r1 = min(max(r1, r0 + 1), num_rows, r0 + max_chunk_rows)
            chunks.append((r0, r1))
            cap = max(cap, int(cum_pairs[r1 - 1] - base))
            r0 = r1

        # Reusable per-pair scratch, sized to the largest chunk.  Every
        # whole-chunk array op below lands in a view of these buffers (the
        # values — and their operand order — are exactly the previous
        # allocate-per-chunk expressions).
        buf_names = ["u", "v", "v2", "rad", "lb", "ub"]
        if nch > 1:
            buf_names.append("s")
        if nch > 4:
            buf_names += ["su", "ss", "u2g"]
        if sorted_weights is not None:
            buf_names.append("w")
        buf = {name: np.empty(cap, dtype=np.float64) for name in buf_names}
        ones_full = (
            np.ones(cap, dtype=np.float64) if sorted_weights is None else None
        )
        if rec is not None:
            envelope_seconds += perf() - t0

        for row0, row1 in chunks:
            t0 = perf() if rec is not None else 0.0
            # Compress the chunk to its non-empty rows: empty rows stay zero
            # in `out` (exactly what the serial loop's `continue` produces),
            # and the tensor below only spends memory on rows that scatter.
            rows_nz = np.nonzero(counts_all[row0:row1])[0]
            num_nz = len(rows_nz)
            if num_nz == 0:
                continue
            counts = counts_all[row0:row1][rows_nz]
            lo = lo_all[row0:row1][rows_nz]
            total = int(counts.sum())

            # Flat (row, point) pair expansion, row-major like the serial
            # loop: pair p of row r maps to sorted-point index
            # lo[r] + (p - offsets[r]).  The scatter destination is the
            # *compressed* row slot (0..num_nz-1, the difference array's
            # leading axis), not the chunk-relative position in rows_nz.
            offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
            row_base = np.repeat(
                np.arange(num_nz, dtype=np.int64) * (num_pixels + 1), counts
            )
            pt = np.arange(total, dtype=np.int64)
            pt += np.repeat(lo - offsets, counts)

            # Stage 2: scaled local frame + channel values for all pairs.
            # u is gathered from the per-point precomputation; v is per-pair.
            u = np.take(point_u, pt, out=buf["u"][:total])
            v = np.take(ysorted.sorted_y, pt, out=buf["v"][:total])
            v -= np.repeat(ks[row0:row1][rows_nz], counts)
            v /= bandwidth
            v2 = np.multiply(v, v, out=buf["v2"][:total])
            radicand = np.subtract(1.0, v2, out=buf["rad"][:total])
            np.clip(radicand, 0.0, None, out=radicand)
            half = np.sqrt(radicand, out=radicand)
            lb = np.subtract(u, half, out=buf["lb"][:total])
            ub = np.add(u, half, out=buf["ub"][:total])
            # Channel values, expressed as bincount weight arrays instead of
            # a materialized (total, nch) matrix: channel 0 is the count
            # (weight w, or an implicit 1), and only the channels live at
            # qy = 0 are built.  Arithmetic matches channel_values exactly:
            # s = x*x + y*y with x = u (precomputed square) and y = v.
            chan_weights: dict[int, np.ndarray | None] = {0: None}
            if nch > 1:
                s = np.take(point_u2, pt, out=buf["s"][:total])
                s += v2
                chan_weights[1] = u
                chan_weights[3] = s
                if nch > 4:
                    chan_weights[4] = np.multiply(s, u, out=buf["su"][:total])
                    chan_weights[6] = np.multiply(s, s, out=buf["ss"][:total])
                    chan_weights[7] = np.take(
                        point_u2, pt, out=buf["u2g"][:total]
                    )
            if sorted_weights is not None:
                # In-place: every value above is already a private scratch
                # view, and a*w elementwise equals the old out-of-place
                # product bit for bit.
                w = np.take(sorted_weights, pt, out=buf["w"][:total])
                for c, a in chan_weights.items():
                    if a is None:
                        chan_weights[c] = w
                    else:
                        a *= w
            if rec is not None:
                t1 = perf()
                envelope_seconds += t1 - t0
                t0 = t1

            # Stage 3: arithmetic bucket assignment for all pairs, then the
            # composite (row, bucket) index.
            enter, leave = bucket_indices(xs_scaled, lb, ub)
            enter += row_base
            leave += row_base
            if rec is not None:
                t1 = perf()
                bucket_seconds += t1 - t0
                t0 = t1

            # Stage 4: one bincount pair per live channel into a flattened
            # (rows, X+1) difference array, prefix-sum along x, and one
            # grid-level density evaluation on the channel map (dead
            # channels stay absent; the kernels' qy = 0 fast path never
            # reads them).
            num_buckets = num_nz * (num_pixels + 1)
            channel_map: dict[int, np.ndarray] = {}
            for c, a in chan_weights.items():
                if a is None:
                    # Unweighted count channel: float weights of 1.0 keep the
                    # bincount in float64 (no int round trip) at equal values.
                    a = ones_full[:total]
                net = np.bincount(enter, weights=a, minlength=num_buckets)
                net -= np.bincount(leave, weights=a, minlength=num_buckets)
                body = net.reshape(num_nz, num_pixels + 1)[:, :num_pixels]
                np.cumsum(body, axis=1, out=body)
                channel_map[c] = body
            density = kernel.density_from_channel_map(
                xs_scaled, 0.0, channel_map, 1.0
            )
            if num_nz == row1 - row0:
                out[row0:row1] = density
            else:
                out[row0 + rows_nz] = density
            if rec is not None:
                sweep_seconds += perf() - t0

        if rec is not None:
            self._flush_recorder(
                rec, num_rows, nonempty_rows, total_pairs,
                envelope_seconds, bucket_seconds, sweep_seconds,
            )
        return out

    @staticmethod
    def _flush_recorder(
        rec: Recorder,
        num_rows: int,
        nonempty_rows: int,
        total_pairs: int,
        envelope_seconds: float,
        bucket_seconds: float,
        sweep_seconds: float,
    ) -> None:
        """Flush per-block accumulators with serial-equal call counts."""
        rec.count("sweep.rows", num_rows)
        rec.count("sweep.empty_rows", num_rows - nonempty_rows)
        rec.count("sweep.envelope_points", total_pairs)
        rec.timer(PHASE_ENVELOPE_UPDATE).add(envelope_seconds, num_rows)
        if nonempty_rows:
            rec.timer(PHASE_ENDPOINT_BUCKET).add(bucket_seconds, nonempty_rows)
            rec.timer(PHASE_PREFIX_SWEEP).add(sweep_seconds, nonempty_rows)


def numpy_batch_grid(
    xy: np.ndarray,
    raster,
    kernel: Kernel,
    bandwidth: float,
    ysorted: YSortedIndex | None = None,
    weights: np.ndarray | None = None,
    workers: "int | str | None" = 1,
    backend: str = "process",
    stats: dict | None = None,
    recorder: "Recorder | None" = None,
    coordinator=None,
    max_block_bytes: int = DEFAULT_MAX_BLOCK_BYTES,
) -> np.ndarray:
    """Grid-level ``numpy_batch`` compute function (engine-table entry).

    Same signature as the :func:`repro.core.sweep.make_grid_function` grid
    functions plus the ``max_block_bytes`` chunking knob (reachable as
    ``compute_kdv(..., engine="numpy_batch", max_block_bytes=...)``).
    """
    return sweep_kdv(
        xy,
        raster,
        kernel,
        bandwidth,
        NumpyBatchEngine(max_block_bytes),
        ysorted=ysorted,
        weights=weights,
        workers=workers,
        backend=backend,
        stats=stats,
        recorder=recorder,
        coordinator=coordinator,
    )
