"""Per-row lower/upper bound intervals (paper Section 3.3).

For each envelope point ``p`` of a row at y-coordinate ``k``, the pixels of the
row that ``p`` contributes to are exactly those with

    LB_k(p) <= q.x <= UB_k(p)

where (paper Equations 8-9)

    LB_k(p) = p.x - sqrt(b^2 - (k - p.y)^2)
    UB_k(p) = p.x + sqrt(b^2 - (k - p.y)^2)

Every envelope point satisfies ``|k - p.y| <= b``, so the radicand is
non-negative by construction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["row_bounds", "bucket_indices"]


def row_bounds(
    envelope_xy: np.ndarray, k: float, bandwidth: float
) -> tuple[np.ndarray, np.ndarray]:
    """Compute ``(LB_k, UB_k)`` arrays for the envelope points of one row.

    Parameters
    ----------
    envelope_xy:
        ``(m, 2)`` coordinates of the points in ``E(k)``.
    k:
        The row's y coordinate.
    bandwidth:
        The kernel bandwidth ``b``.

    Returns
    -------
    Two ``(m,)`` float64 arrays, the lower and upper bound x values.

    Raises
    ------
    ValueError
        If some point is not actually inside the envelope (negative radicand),
        which indicates a caller bug.
    """
    envelope_xy = np.asarray(envelope_xy, dtype=np.float64)
    dy = k - envelope_xy[:, 1]
    radicand = bandwidth * bandwidth - dy * dy
    if len(radicand) and radicand.min() < 0.0:
        raise ValueError("point outside envelope passed to row_bounds (|k - p.y| > b)")
    half_width = np.sqrt(radicand)
    px = envelope_xy[:, 0]
    return px - half_width, px + half_width


def bucket_indices(
    xs: np.ndarray, lb: np.ndarray, ub: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized O(1)-per-point bucket assignment (paper Equations 19-20).

    Returns ``(enter, leave)`` int64 arrays: the point contributes to pixel
    ``i`` exactly when ``enter[p] <= i < leave[p]``.  Index ``X`` means
    "past the end of the row".  Semantics match ``searchsorted`` exactly:
    ``enter`` is the smallest ``i`` with ``xs[i] >= lb``, ``leave`` the
    smallest ``i`` with ``xs[i] > ub`` (strict, so a pixel exactly on the
    upper bound still counts the point — Lemma 2's closed interval).

    The arithmetic index ``ceil((lb - xs[0]) / gx)`` can be off by one when
    an endpoint coincides with a pixel center (or within one ulp of it), so
    each index gets a one-step correction against the actual pixel
    coordinates; rounding error is far below one pixel gap, so a single
    step suffices.  The corrections add boolean masks directly (False adds
    0), which is equivalent to masked assignment but avoids the fancy-index
    round trip on the hot path.
    """
    num_pixels = len(xs)
    x0 = xs[0]
    gx = xs[1] - xs[0] if num_pixels > 1 else 1.0

    enter = np.ceil((lb - x0) / gx).astype(np.int64)
    np.clip(enter, 0, num_pixels, out=enter)
    leave = np.floor((ub - x0) / gx).astype(np.int64)
    leave += 1
    np.clip(leave, 0, num_pixels, out=leave)

    enter += (enter < num_pixels) & (xs[np.minimum(enter, num_pixels - 1)] < lb)
    enter -= (enter > 0) & (xs[np.maximum(enter - 1, 0)] >= lb)

    leave += (leave < num_pixels) & (xs[np.minimum(leave, num_pixels - 1)] <= ub)
    leave -= (leave > 0) & (xs[np.maximum(leave - 1, 0)] > ub)
    return enter, leave
