"""Per-row lower/upper bound intervals (paper Section 3.3).

For each envelope point ``p`` of a row at y-coordinate ``k``, the pixels of the
row that ``p`` contributes to are exactly those with

    LB_k(p) <= q.x <= UB_k(p)

where (paper Equations 8-9)

    LB_k(p) = p.x - sqrt(b^2 - (k - p.y)^2)
    UB_k(p) = p.x + sqrt(b^2 - (k - p.y)^2)

Every envelope point satisfies ``|k - p.y| <= b``, so the radicand is
non-negative by construction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["row_bounds"]


def row_bounds(
    envelope_xy: np.ndarray, k: float, bandwidth: float
) -> tuple[np.ndarray, np.ndarray]:
    """Compute ``(LB_k, UB_k)`` arrays for the envelope points of one row.

    Parameters
    ----------
    envelope_xy:
        ``(m, 2)`` coordinates of the points in ``E(k)``.
    k:
        The row's y coordinate.
    bandwidth:
        The kernel bandwidth ``b``.

    Returns
    -------
    Two ``(m,)`` float64 arrays, the lower and upper bound x values.

    Raises
    ------
    ValueError
        If some point is not actually inside the envelope (negative radicand),
        which indicates a caller bug.
    """
    envelope_xy = np.asarray(envelope_xy, dtype=np.float64)
    dy = k - envelope_xy[:, 1]
    radicand = bandwidth * bandwidth - dy * dy
    if len(radicand) and radicand.min() < 0.0:
        raise ValueError("point outside envelope passed to row_bounds (|k - p.y| > b)")
    half_width = np.sqrt(radicand)
    px = envelope_xy[:, 0]
    return px - half_width, px + half_width
