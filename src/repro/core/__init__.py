"""The paper's primary contribution: SLAM sweep-line KDV algorithms."""

from .api import compute_kdv, method_names
from .kernels import get_kernel
from .result import KDVResult, SweepStats

__all__ = ["compute_kdv", "method_names", "get_kernel", "KDVResult", "SweepStats"]
