"""Lixels — the network analog of pixels.

NKDV discretizes every edge into *lixels* (linear pixels) of a target
length; the density is evaluated at each lixel's center point and visualized
by coloring the lixel's segment.  :class:`Lixelization` stores the flat
per-lixel arrays (owning edge, start/center offsets, world-coordinate
segments) the NKDV evaluator and renderer consume.
"""

from __future__ import annotations

import numpy as np

from .graph import SpatialNetwork

__all__ = ["Lixelization"]


class Lixelization:
    """Subdivision of every network edge into lixels of ~``lixel_length``.

    Each edge of length ``L`` is cut into ``ceil(L / lixel_length)`` equal
    pieces (so lixels never exceed the target length and tile the edge
    exactly).

    Attributes
    ----------
    edge_id:
        ``(M,)`` owning edge of each lixel.
    start, center:
        ``(M,)`` offsets along the owning edge of the lixel's start/center.
    length:
        ``(M,)`` lixel lengths.
    edge_first_lixel:
        ``(E + 1,)`` CSR offsets: edge ``e``'s lixels are the id range
        ``[edge_first_lixel[e], edge_first_lixel[e + 1])``.
    """

    def __init__(self, network: SpatialNetwork, lixel_length: float):
        if lixel_length <= 0:
            raise ValueError("lixel_length must be positive")
        self.network = network
        self.lixel_length = float(lixel_length)

        counts = np.maximum(
            1, np.ceil(network.edge_length / lixel_length).astype(np.int64)
        )
        self.edge_first_lixel = np.concatenate([[0], np.cumsum(counts)]).astype(
            np.int64
        )
        total = int(self.edge_first_lixel[-1])
        self.edge_id = np.repeat(np.arange(network.num_edges, dtype=np.int64), counts)
        # index of each lixel within its edge
        within = np.arange(total, dtype=np.int64) - self.edge_first_lixel[self.edge_id]
        piece = network.edge_length[self.edge_id] / counts[self.edge_id]
        self.length = piece
        self.start = within * piece
        self.center = self.start + piece / 2.0

    def __len__(self) -> int:
        return len(self.edge_id)

    def center_points(self) -> np.ndarray:
        """World coordinates of every lixel center, shape ``(M, 2)``."""
        net = self.network
        a = net.node_xy[net.edges[self.edge_id, 0]]
        b = net.node_xy[net.edges[self.edge_id, 1]]
        t = (self.center / net.edge_length[self.edge_id])[:, None]
        return (1.0 - t) * a + t * b

    def segments(self) -> np.ndarray:
        """World-coordinate segments ``(M, 2, 2)``: [start point, end point]."""
        net = self.network
        a = net.node_xy[net.edges[self.edge_id, 0]]
        b = net.node_xy[net.edges[self.edge_id, 1]]
        direction = b - a
        t0 = (self.start / net.edge_length[self.edge_id])[:, None]
        t1 = ((self.start + self.length) / net.edge_length[self.edge_id])[:, None]
        return np.stack([a + t0 * direction, a + t1 * direction], axis=1)

    def lixels_of_edge(self, edge: int) -> slice:
        """The lixel-id slice belonging to one edge."""
        return slice(
            int(self.edge_first_lixel[edge]), int(self.edge_first_lixel[edge + 1])
        )
