"""Network Kernel Density Visualization (NKDV).

Density over a road network with shortest-path distances:

    F(l) = sum_{events p} w_p * K(d_N(l, p))

for every lixel center ``l``, where ``d_N`` is the network distance and
``K`` one of the finite-support kernels of the paper's Table 2 (evaluated on
network distance instead of Euclidean).  This is the paper's future-work
item [20] (Chan et al., "Fast Augmentation Algorithms for Network Kernel
Density Visualization").

Two evaluators:

* :func:`nkdv_event_centric` — the efficient direction: one bounded
  multi-source Dijkstra *per event* (seeded at its edge's endpoints, budget
  ``b``), then a vectorized scatter of kernel mass onto the lixels of every
  reached edge.  Cost per event is proportional to the subnetwork within
  ``b``, so total cost is O(n * reach), independent of total network size.
* :func:`nkdv_lixel_centric` — the naive direction (one bounded Dijkstra per
  *lixel*), kept as the correctness baseline; O(M * reach) for M lixels,
  typically far more expensive since M >> n.

Both are exact and must agree; the tests assert it.  Distance convention:
shortest paths between interior points pass through edge endpoints, except
when both points lie on the *same edge*, where the direct along-edge path
``|a - s|`` also competes — handled explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.kernels import Kernel, get_kernel
from .graph import SpatialNetwork
from .lixel import Lixelization
from .shortest_path import bounded_dijkstra, node_distances_from_edge_point

__all__ = ["compute_nkdv", "nkdv_event_centric", "nkdv_lixel_centric", "NKDVResult"]


def _check_kernel(kernel: Kernel) -> None:
    if not np.isfinite(kernel.support_radius(1.0)):
        raise ValueError(
            f"kernel {kernel.name!r} has infinite support; NKDV requires a "
            "finite-support kernel (bounded Dijkstra would never terminate)"
        )


def _incident_edges(network: SpatialNetwork, nodes) -> np.ndarray:
    """Unique edge ids incident to any of the given nodes."""
    chunks = []
    for node in nodes:
        start, end = network.adj_start[node], network.adj_start[node + 1]
        chunks.append(network.adj_edge[start:end])
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks))


def nkdv_event_centric(
    network: SpatialNetwork,
    lixels: Lixelization,
    event_edges: np.ndarray,
    event_offsets: np.ndarray,
    kernel: Kernel,
    bandwidth: float,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Exact NKDV by scattering each event's kernel mass over its reach."""
    _check_kernel(kernel)
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    event_edges = np.asarray(event_edges, dtype=np.int64)
    event_offsets = np.asarray(event_offsets, dtype=np.float64)
    if event_edges.shape != event_offsets.shape or event_edges.ndim != 1:
        raise ValueError("event_edges and event_offsets must be matching 1-D arrays")
    n = len(event_edges)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError(f"weights must have shape ({n},), got {weights.shape}")

    density = np.zeros(len(lixels), dtype=np.float64)
    edge_nodes = network.edges
    edge_len = network.edge_length

    for i in range(n):
        e = int(event_edges[i])
        a = float(event_offsets[i])
        w = 1.0 if weights is None else float(weights[i])
        if w == 0.0:
            continue
        node_dist = node_distances_from_edge_point(network, e, a, bandwidth)
        candidates = _incident_edges(network, node_dist.keys())
        for f in candidates:
            sl = lixels.lixels_of_edge(int(f))
            s = lixels.center[sl]
            u, v = edge_nodes[f]
            du = node_dist.get(int(u), np.inf)
            dv = node_dist.get(int(v), np.inf)
            d = np.minimum(du + s, dv + (edge_len[f] - s))
            if f == e:
                d = np.minimum(d, np.abs(a - s))
            inside = d <= bandwidth
            if inside.any():
                view = density[sl]  # slice of the flat array -> a view
                view[inside] += w * kernel.evaluate(d[inside] ** 2, bandwidth)
        # The event's own edge might have been pruned if neither endpoint is
        # within the budget (possible when the edge is longer than 2b).
        if e not in candidates:
            sl = lixels.lixels_of_edge(e)
            s = lixels.center[sl]
            d = np.abs(a - s)
            inside = d <= bandwidth
            if inside.any():
                view = density[sl]
                view[inside] += w * kernel.evaluate(d[inside] ** 2, bandwidth)
    return density


def nkdv_lixel_centric(
    network: SpatialNetwork,
    lixels: Lixelization,
    event_edges: np.ndarray,
    event_offsets: np.ndarray,
    kernel: Kernel,
    bandwidth: float,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Exact NKDV by a bounded Dijkstra per lixel (naive baseline)."""
    _check_kernel(kernel)
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    event_edges = np.asarray(event_edges, dtype=np.int64)
    event_offsets = np.asarray(event_offsets, dtype=np.float64)
    weights_arr = (
        np.ones(len(event_edges))
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )

    # group events by edge for the per-lixel pass
    events_on_edge: dict[int, list[int]] = {}
    for i, e in enumerate(event_edges):
        events_on_edge.setdefault(int(e), []).append(i)

    density = np.zeros(len(lixels), dtype=np.float64)
    for lix in range(len(lixels)):
        f = int(lixels.edge_id[lix])
        s = float(lixels.center[lix])
        u, v = (int(x) for x in network.edges[f])
        length = float(network.edge_length[f])
        node_dist = bounded_dijkstra(network, {u: s, v: length - s}, bandwidth)
        total = 0.0
        for e, idxs in events_on_edge.items():
            eu, ev = (int(x) for x in network.edges[e])
            elen = float(network.edge_length[e])
            du = node_dist.get(eu, np.inf)
            dv = node_dist.get(ev, np.inf)
            for i in idxs:
                a = float(event_offsets[i])
                d = min(du + a, dv + (elen - a))
                if e == f:
                    d = min(d, abs(a - s))
                if d <= bandwidth:
                    total += weights_arr[i] * float(
                        kernel.evaluate(np.float64(d * d), bandwidth)
                    )
        density[lix] = total
    return density


@dataclass(frozen=True)
class NKDVResult:
    """Per-lixel network densities plus rendering helpers."""

    lixels: Lixelization
    density: np.ndarray
    kernel: str
    bandwidth: float
    method: str
    n_events: int

    def __len__(self) -> int:
        return len(self.density)

    def max_density(self) -> float:
        return float(self.density.max()) if self.density.size else 0.0

    def hotspot_lixels(self, quantile: float = 0.99) -> np.ndarray:
        """Boolean mask of lixels at or above the density quantile."""
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        positive = self.density[self.density > 0]
        if positive.size == 0:
            return np.zeros(len(self.density), dtype=bool)
        threshold = np.quantile(positive, quantile)
        return self.density >= threshold

    def rasterize(self, size: tuple[int, int] = (640, 480)) -> np.ndarray:
        """Paint the lixel densities onto a pixel grid for display.

        Each lixel segment is sampled at sub-pixel spacing and stamped into
        the grid with a max-combine, so crossing roads keep the hotter
        value.  Returns a ``(H, W)`` float array (row 0 = south).
        """
        width, height = size
        if width < 1 or height < 1:
            raise ValueError("size must be at least 1x1")
        net = self.lixels.network
        xy = net.node_xy
        xmin, ymin = xy.min(axis=0)
        xmax, ymax = xy.max(axis=0)
        if xmax == xmin:
            xmax = xmin + 1.0
        if ymax == ymin:
            ymax = ymin + 1.0
        gx = (xmax - xmin) / width
        gy = (ymax - ymin) / height
        grid = np.zeros((height, width), dtype=np.float64)
        segments = self.lixels.segments()
        step = min(gx, gy) / 2.0
        for seg, value in zip(segments, self.density):
            if value <= 0.0:
                continue
            p0, p1 = seg
            seg_len = float(np.hypot(*(p1 - p0)))
            samples = max(2, int(seg_len / step) + 1)
            t = np.linspace(0.0, 1.0, samples)
            pts = p0[None, :] + t[:, None] * (p1 - p0)[None, :]
            ix = np.clip(((pts[:, 0] - xmin) / gx).astype(int), 0, width - 1)
            iy = np.clip(((pts[:, 1] - ymin) / gy).astype(int), 0, height - 1)
            np.maximum.at(grid, (iy, ix), value)
        return grid

    def to_image(self, size: tuple[int, int] = (640, 480), colormap: str = "heat"):
        """Rasterize and colorize (north-up) for writing with
        :func:`repro.viz.image.write_ppm`."""
        from ..viz.colormap import apply_colormap

        return apply_colormap(self.rasterize(size)[::-1], colormap)


def compute_nkdv(
    network: SpatialNetwork,
    points: np.ndarray,
    lixel_length: float = 25.0,
    kernel: "str | Kernel" = "epanechnikov",
    bandwidth: float = 500.0,
    weights: np.ndarray | None = None,
    method: str = "event",
) -> NKDVResult:
    """End-to-end NKDV: snap events to the network, lixelize, evaluate.

    Parameters
    ----------
    network:
        The road network.
    points:
        ``(n, 2)`` event coordinates (snapped to their nearest edge) — or a
        :class:`~repro.data.points.PointSet`.
    lixel_length:
        Target lixel size in meters (the network "resolution").
    bandwidth:
        Network-distance kernel bandwidth in meters.
    method:
        ``"event"`` (fast, default) or ``"lixel"`` (naive baseline).
    """
    from ..data.points import PointSet

    if isinstance(points, PointSet):
        if weights is None and points.w is not None:
            weights = points.w
        points = points.xy
    xy = np.asarray(points, dtype=np.float64)
    kernel_obj = get_kernel(kernel)
    if method not in ("event", "lixel"):
        raise ValueError(f"unknown method {method!r}; expected 'event' or 'lixel'")
    lixels = Lixelization(network, lixel_length)
    event_edges, event_offsets = network.snap(xy)
    evaluator = nkdv_event_centric if method == "event" else nkdv_lixel_centric
    density = evaluator(
        network, lixels, event_edges, event_offsets, kernel_obj, bandwidth,
        weights=weights,
    )
    return NKDVResult(
        lixels=lixels,
        density=density,
        kernel=kernel_obj.name,
        bandwidth=float(bandwidth),
        method=method,
        n_events=len(xy),
    )
