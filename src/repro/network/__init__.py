"""Network KDV substrate and evaluators (the paper's NKDV future work)."""

from .graph import SpatialNetwork, street_grid
from .lixel import Lixelization
from .nkdv import NKDVResult, compute_nkdv, nkdv_event_centric, nkdv_lixel_centric
from .shortest_path import bounded_dijkstra, node_distances_from_edge_point

__all__ = [
    "SpatialNetwork",
    "street_grid",
    "Lixelization",
    "bounded_dijkstra",
    "node_distances_from_edge_point",
    "compute_nkdv",
    "nkdv_event_centric",
    "nkdv_lixel_centric",
    "NKDVResult",
]
