"""Spatial road networks — the substrate for network KDV.

The SLAM paper's conclusion plans support for network KDV (NKDV [20]): kernel
density over a road network with *network* (shortest-path) distances instead
of Euclidean ones, which is how traffic-accident analysis is actually done —
crashes cluster along roads, not across blocks.

:class:`SpatialNetwork` is an undirected weighted graph embedded in the
plane: nodes carry coordinates, edges carry their Euclidean length (or a
custom length).  Everything downstream (Dijkstra, lixels, NKDV) is built on
its flat-array representation:

* ``node_xy``         — (V, 2) node coordinates
* ``edges``           — (E, 2) node-id pairs
* ``edge_length``     — (E,)
* CSR adjacency (``adj_start``, ``adj_node``, ``adj_edge``, ``adj_weight``)
  for O(1)-amortized neighbor iteration in Dijkstra.

:func:`street_grid` builds the synthetic Manhattan-style grid the examples
and benchmarks use, with optional random edge removals so the graph is not a
trivial lattice.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SpatialNetwork", "street_grid"]


class SpatialNetwork:
    """An undirected spatial graph with CSR adjacency.

    Parameters
    ----------
    node_xy:
        ``(V, 2)`` node coordinates.
    edges:
        ``(E, 2)`` integer node-id pairs; parallel edges and self-loops are
        rejected (they have no meaning for road networks here).
    edge_length:
        Optional ``(E,)`` positive lengths; defaults to Euclidean distances
        between the endpoints.
    """

    def __init__(
        self,
        node_xy: np.ndarray,
        edges: np.ndarray,
        edge_length: np.ndarray | None = None,
    ):
        node_xy = np.asarray(node_xy, dtype=np.float64)
        if node_xy.ndim != 2 or node_xy.shape[1] != 2:
            raise ValueError(f"node_xy must be (V, 2), got {node_xy.shape}")
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must be (E, 2), got {edges.shape}")
        num_nodes = len(node_xy)
        if edges.size and (edges.min() < 0 or edges.max() >= num_nodes):
            raise ValueError("edge endpoint out of range")
        if np.any(edges[:, 0] == edges[:, 1]):
            raise ValueError("self-loops are not allowed")
        canon = np.sort(edges, axis=1)
        if len(np.unique(canon, axis=0)) != len(edges):
            raise ValueError("parallel edges are not allowed")

        if edge_length is None:
            delta = node_xy[edges[:, 0]] - node_xy[edges[:, 1]]
            edge_length = np.sqrt((delta**2).sum(axis=1))
        else:
            edge_length = np.asarray(edge_length, dtype=np.float64)
            if edge_length.shape != (len(edges),):
                raise ValueError(
                    f"edge_length must have shape ({len(edges)},), got {edge_length.shape}"
                )
            if np.any(edge_length <= 0):
                raise ValueError("edge lengths must be positive")

        self.node_xy = node_xy
        self.edges = edges
        self.edge_length = edge_length

        # CSR adjacency over the symmetrized edge list
        ends = np.concatenate([edges[:, 0], edges[:, 1]])
        other = np.concatenate([edges[:, 1], edges[:, 0]])
        edge_ids = np.concatenate([np.arange(len(edges))] * 2)
        weights = np.concatenate([edge_length, edge_length])
        order = np.argsort(ends, kind="stable")
        self.adj_node = other[order]
        self.adj_edge = edge_ids[order]
        self.adj_weight = weights[order]
        counts = np.bincount(ends, minlength=num_nodes)
        self.adj_start = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    @property
    def num_nodes(self) -> int:
        return len(self.node_xy)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def total_length(self) -> float:
        """Sum of edge lengths (the network's 1-D "area" for normalization)."""
        return float(self.edge_length.sum())

    def neighbors(self, node: int):
        """Iterate ``(neighbor_node, edge_id, weight)`` triples of a node."""
        start, end = self.adj_start[node], self.adj_start[node + 1]
        for i in range(start, end):
            yield int(self.adj_node[i]), int(self.adj_edge[i]), float(self.adj_weight[i])

    def degree(self, node: int) -> int:
        return int(self.adj_start[node + 1] - self.adj_start[node])

    def edge_point(self, edge: int, offset: float) -> np.ndarray:
        """World coordinates of the point ``offset`` along an edge (from its
        first endpoint)."""
        length = self.edge_length[edge]
        if not 0.0 <= offset <= length + 1e-9:
            raise ValueError(f"offset {offset} outside edge of length {length}")
        u, v = self.edges[edge]
        t = min(max(offset / length, 0.0), 1.0)
        return (1.0 - t) * self.node_xy[u] + t * self.node_xy[v]

    def snap(self, xy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project points onto their nearest edge.

        Returns ``(edge_ids, offsets)``: for each input point, the edge it
        lands on and the distance along that edge from its first endpoint.
        Exhaustive over edges per point (vectorized over edges), which is
        fine for the network sizes here; a spatial index over edge MBRs would
        drop this to near O(log E) per point.
        """
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) coordinates, got {xy.shape}")
        if self.num_edges == 0:
            raise ValueError("cannot snap onto a network with no edges")
        a = self.node_xy[self.edges[:, 0]]  # (E, 2)
        d = self.node_xy[self.edges[:, 1]] - a  # (E, 2)
        len_sq = (d**2).sum(axis=1)
        edge_ids = np.empty(len(xy), dtype=np.int64)
        offsets = np.empty(len(xy), dtype=np.float64)
        for i, p in enumerate(xy):
            t = ((p - a) * d).sum(axis=1) / len_sq
            t = np.clip(t, 0.0, 1.0)
            proj = a + t[:, None] * d
            dist_sq = ((proj - p) ** 2).sum(axis=1)
            best = int(np.argmin(dist_sq))
            edge_ids[i] = best
            offsets[i] = t[best] * self.edge_length[best]
        return edge_ids, offsets


def street_grid(
    columns: int,
    rows: int,
    spacing: float = 100.0,
    origin: tuple[float, float] = (0.0, 0.0),
    removal_fraction: float = 0.0,
    seed: int = 0,
) -> SpatialNetwork:
    """A Manhattan-style street grid network.

    Parameters
    ----------
    columns, rows:
        Number of intersections per axis (>= 2 each).
    spacing:
        Block size in meters.
    removal_fraction:
        Fraction of edges randomly removed (kept connected is *not*
        guaranteed; NKDV handles disconnected components naturally — density
        simply cannot cross them).
    """
    if columns < 2 or rows < 2:
        raise ValueError("need at least a 2x2 grid")
    if not 0.0 <= removal_fraction < 1.0:
        raise ValueError("removal_fraction must be in [0, 1)")
    ox, oy = origin
    xs, ys = np.meshgrid(np.arange(columns), np.arange(rows))
    node_xy = np.column_stack(
        [ox + xs.ravel() * spacing, oy + ys.ravel() * spacing]
    ).astype(np.float64)

    def node_id(col: int, row: int) -> int:
        return row * columns + col

    edge_list = []
    for row in range(rows):
        for col in range(columns):
            if col + 1 < columns:
                edge_list.append((node_id(col, row), node_id(col + 1, row)))
            if row + 1 < rows:
                edge_list.append((node_id(col, row), node_id(col, row + 1)))
    edges = np.array(edge_list, dtype=np.int64)
    if removal_fraction > 0:
        rng = np.random.default_rng(seed)
        keep = rng.random(len(edges)) >= removal_fraction
        if not keep.any():
            keep[0] = True
        edges = edges[keep]
    return SpatialNetwork(node_xy, edges)
