"""Shortest-path machinery for network KDV: bounded multi-source Dijkstra.

NKDV only needs distances up to the kernel bandwidth ``b``, so every search
is *bounded*: the frontier stops expanding past ``b`` and the visited
subgraph stays proportional to the kernel's reach, independent of the whole
network's size.  Sources may sit mid-edge (events are snapped onto edges),
which multi-source seeding handles exactly: an event at offset ``a`` along
edge ``(u, v)`` of length ``L`` seeds ``u`` at distance ``a`` and ``v`` at
``L - a``; every shortest path from an interior point leaves through an
endpoint, except same-edge paths which callers handle directly.

Implemented from scratch on a binary heap (``heapq``) with lazy deletion —
no external graph library in the runtime path.
"""

from __future__ import annotations

import heapq

import numpy as np

from .graph import SpatialNetwork

__all__ = ["bounded_dijkstra", "node_distances_from_edge_point"]


def bounded_dijkstra(
    network: SpatialNetwork,
    seeds: "dict[int, float] | list[tuple[int, float]]",
    budget: float,
) -> dict[int, float]:
    """Multi-source Dijkstra truncated at ``budget``.

    Parameters
    ----------
    seeds:
        Mapping (or pairs) of node id -> initial distance.  Seeds beyond the
        budget are ignored.
    budget:
        Maximum distance of interest (inclusive).

    Returns
    -------
    dict of node id -> shortest distance, for every node within ``budget``.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    items = seeds.items() if isinstance(seeds, dict) else seeds
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = []
    for node, d0 in items:
        d0 = float(d0)
        if d0 > budget:
            continue
        if not 0 <= node < network.num_nodes:
            raise ValueError(f"seed node {node} out of range")
        if d0 < dist.get(node, np.inf):
            dist[node] = d0
            heapq.heappush(heap, (d0, node))

    adj_start = network.adj_start
    adj_node = network.adj_node
    adj_weight = network.adj_weight
    settled: set[int] = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue  # lazy deletion
        settled.add(node)
        for i in range(adj_start[node], adj_start[node + 1]):
            neighbor = int(adj_node[i])
            nd = d + float(adj_weight[i])
            if nd <= budget and nd < dist.get(neighbor, np.inf):
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, neighbor))
    return dist


def node_distances_from_edge_point(
    network: SpatialNetwork,
    edge: int,
    offset: float,
    budget: float,
) -> dict[int, float]:
    """Bounded network distances from a point sitting on an edge.

    The point at ``offset`` along ``edge`` (measured from the edge's first
    endpoint) seeds both endpoints; the returned distances are exact for all
    nodes within ``budget``.
    """
    length = float(network.edge_length[edge])
    if not 0.0 <= offset <= length + 1e-9:
        raise ValueError(f"offset {offset} outside edge of length {length}")
    offset = min(max(offset, 0.0), length)
    u, v = (int(x) for x in network.edges[edge])
    return bounded_dijkstra(network, {u: offset, v: length - offset}, budget)
