"""Spatial index substrates built from scratch for the baselines."""

from .balltree import BallTree
from .kdtree import KDTree
from .rtree import RTree
from .zorder_curve import morton_codes, zorder_argsort

__all__ = ["KDTree", "BallTree", "RTree", "morton_codes", "zorder_argsort"]
