"""A from-scratch 2-D kd-tree [Bentley 1975].

Used by the range-query baseline (RQS_kd, paper Section 2.2), the QUAD
baseline (node-aggregate shortcutting), and the aKDE baseline (kernel bound
pruning).  The tree is stored in flat NumPy arrays so traversals can use an
explicit stack and leaves can be processed vectorized:

* points are permuted into leaf-contiguous order (``perm``);
* each node records its child ids, its point range ``[start, end)`` in the
  permuted array, and its axis-aligned bounding box;
* each node optionally carries aggregate channel sums of its subtree
  (count, sum of coordinates, sum of squared norms, ... — the channels of
  :mod:`repro.core.kernels`), enabling O(1) exact contributions for nodes
  entirely inside a kernel's support disc.

Splits are median splits on the wider bounding-box dimension, giving
O(n log n) construction and balanced depth.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import channel_values

__all__ = ["KDTree"]

_NO_CHILD = -1


class KDTree:
    """Balanced 2-D kd-tree over an ``(n, 2)`` coordinate array.

    Parameters
    ----------
    xy:
        Point coordinates.
    leaf_size:
        Maximum number of points per leaf.
    num_channels:
        How many aggregate channels to precompute per node (0 disables
        aggregates; RQS needs none, QUAD needs the kernel's channel count).
    """

    def __init__(
        self,
        xy: np.ndarray,
        leaf_size: int = 32,
        num_channels: int = 0,
        weights: np.ndarray | None = None,
    ):
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = leaf_size
        self.num_channels = num_channels
        n = len(xy)
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (n,):
                raise ValueError(f"weights must have shape ({n},), got {weights.shape}")
        self.perm = np.arange(n, dtype=np.int64)
        self._xy_original = xy

        # Flat node storage, grown in Python lists during the build.
        starts: list[int] = []
        ends: list[int] = []
        lefts: list[int] = []
        rights: list[int] = []
        bboxes: list[tuple[float, float, float, float]] = []

        def build(start: int, end: int) -> int:
            node_id = len(starts)
            starts.append(start)
            ends.append(end)
            lefts.append(_NO_CHILD)
            rights.append(_NO_CHILD)
            pts = xy[self.perm[start:end]]
            if end > start:
                xmin, ymin = pts.min(axis=0)
                xmax, ymax = pts.max(axis=0)
            else:  # empty tree root
                xmin = ymin = xmax = ymax = 0.0
            bboxes.append((float(xmin), float(ymin), float(xmax), float(ymax)))
            if end - start > leaf_size:
                dim = 0 if (xmax - xmin) >= (ymax - ymin) else 1
                mid = (start + end) // 2
                seg = self.perm[start:end]
                part = np.argpartition(xy[seg, dim], mid - start)
                self.perm[start:end] = seg[part]
                left_id = build(start, mid)
                right_id = build(mid, end)
                lefts[node_id] = left_id
                rights[node_id] = right_id
            return node_id

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000))
        try:
            build(0, n)
        finally:
            sys.setrecursionlimit(old_limit)

        self.node_start = np.array(starts, dtype=np.int64)
        self.node_end = np.array(ends, dtype=np.int64)
        self.node_left = np.array(lefts, dtype=np.int64)
        self.node_right = np.array(rights, dtype=np.int64)
        self.node_bbox = np.array(bboxes, dtype=np.float64)  # (nodes, 4)
        #: points in permuted (leaf-contiguous) order
        self.points = xy[self.perm]
        #: per-point weights in permuted order (None when unweighted)
        self.weights = None if weights is None else weights[self.perm]

        if num_channels > 0:
            chans = channel_values(self.points, num_channels, weights=self.weights)
            prefix = np.concatenate(
                [np.zeros((1, num_channels)), np.cumsum(chans, axis=0)]
            )
            #: per-node aggregate channel sums, shape (nodes, num_channels)
            self.node_agg = prefix[self.node_end] - prefix[self.node_start]
        else:
            self.node_agg = None

    @property
    def num_nodes(self) -> int:
        return len(self.node_start)

    def is_leaf(self, node: int) -> bool:
        return self.node_left[node] == _NO_CHILD

    def node_size(self, node: int) -> int:
        return int(self.node_end[node] - self.node_start[node])

    def min_dist_sq(self, node: int, qx: float, qy: float) -> float:
        """Squared distance from ``q`` to the node's bounding box (0 inside)."""
        xmin, ymin, xmax, ymax = self.node_bbox[node]
        dx = max(xmin - qx, 0.0, qx - xmax)
        dy = max(ymin - qy, 0.0, qy - ymax)
        return dx * dx + dy * dy

    def max_dist_sq(self, node: int, qx: float, qy: float) -> float:
        """Squared distance from ``q`` to the farthest bounding-box corner."""
        xmin, ymin, xmax, ymax = self.node_bbox[node]
        dx = max(qx - xmin, xmax - qx)
        dy = max(qy - ymin, ymax - qy)
        return dx * dx + dy * dy

    def query_radius(self, qx: float, qy: float, radius: float) -> np.ndarray:
        """Indices (into the *original* array) of points within ``radius``.

        The classic range query the RQS baseline issues once per pixel.
        """
        r_sq = radius * radius
        hits: list[np.ndarray] = []
        stack = [0]
        while stack:
            node = stack.pop()
            if self.node_size(node) == 0:
                continue
            if self.min_dist_sq(node, qx, qy) > r_sq:
                continue
            if self.max_dist_sq(node, qx, qy) <= r_sq:
                # whole subtree inside the disc
                hits.append(self.perm[self.node_start[node] : self.node_end[node]])
                continue
            if self.is_leaf(node):
                start, end = self.node_start[node], self.node_end[node]
                pts = self.points[start:end]
                d_sq = (pts[:, 0] - qx) ** 2 + (pts[:, 1] - qy) ** 2
                hits.append(self.perm[start:end][d_sq <= r_sq])
            else:
                stack.append(int(self.node_left[node]))
                stack.append(int(self.node_right[node]))
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(hits)

    def count_radius(self, qx: float, qy: float, radius: float) -> int:
        """Number of points within ``radius`` (used in tests)."""
        return len(self.query_radius(qx, qy, radius))
