"""Morton (Z-order) space-filling curve codes.

The Z-order baseline [Zheng et al. 2013] sorts a dataset along the Z-order
curve and takes an evenly spaced subsequence as its sample, which spreads the
sample across space far better than uniform random sampling.  This module
provides vectorized 2-D Morton encoding: each coordinate is quantized to
``bits`` levels over the dataset's bounding box and the two bit strings are
interleaved (x in the even positions).
"""

from __future__ import annotations

import numpy as np

__all__ = ["interleave_bits", "morton_codes", "zorder_argsort"]

_DEFAULT_BITS = 16


def interleave_bits(values: np.ndarray, bits: int = _DEFAULT_BITS) -> np.ndarray:
    """Spread the low ``bits`` bits of each value so they occupy even positions.

    Classic "magic numbers" bit dilation, vectorized over uint64 arrays.
    Supports up to 32 bits per coordinate.
    """
    if not 1 <= bits <= 32:
        raise ValueError("bits must be in [1, 32]")
    v = np.asarray(values, dtype=np.uint64)
    v = v & np.uint64((1 << bits) - 1)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


def morton_codes(xy: np.ndarray, bits: int = _DEFAULT_BITS) -> np.ndarray:
    """Morton codes of 2-D points quantized over their bounding box."""
    xy = np.asarray(xy, dtype=np.float64)
    if xy.ndim != 2 or xy.shape[1] != 2:
        raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
    if len(xy) == 0:
        return np.empty(0, dtype=np.uint64)
    lo = xy.min(axis=0)
    hi = xy.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    levels = (1 << bits) - 1
    quantized = np.floor((xy - lo) / span * levels).astype(np.uint64)
    quantized = np.minimum(quantized, np.uint64(levels))
    return interleave_bits(quantized[:, 0], bits) | (
        interleave_bits(quantized[:, 1], bits) << np.uint64(1)
    )


def zorder_argsort(xy: np.ndarray, bits: int = _DEFAULT_BITS) -> np.ndarray:
    """Indices that sort the points along the Z-order curve."""
    return np.argsort(morton_codes(xy, bits), kind="stable")
