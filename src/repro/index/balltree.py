"""A from-scratch 2-D ball tree [Moore 2000, "anchors hierarchy"].

The second range-query index of the paper's RQS baseline (Section 2.2,
RQS_ball).  Each node is a bounding ball (centroid + radius over its subtree);
construction splits on the wider coordinate of the node's extent, like the
kd-tree, but pruning uses ball geometry:

    min_dist(q, node) = max(0, |q - center| - radius)
    max_dist(q, node) = |q - center| + radius

The flat-array layout mirrors :class:`repro.index.kdtree.KDTree` so the two
indexes are drop-in interchangeable for the baselines.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.kernels import channel_values

__all__ = ["BallTree"]

_NO_CHILD = -1


class BallTree:
    """Balanced 2-D ball tree over an ``(n, 2)`` coordinate array."""

    def __init__(
        self,
        xy: np.ndarray,
        leaf_size: int = 32,
        num_channels: int = 0,
        weights: np.ndarray | None = None,
    ):
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = leaf_size
        self.num_channels = num_channels
        n = len(xy)
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (n,):
                raise ValueError(f"weights must have shape ({n},), got {weights.shape}")
        self.perm = np.arange(n, dtype=np.int64)

        starts: list[int] = []
        ends: list[int] = []
        lefts: list[int] = []
        rights: list[int] = []
        centers: list[tuple[float, float]] = []
        radii: list[float] = []

        def build(start: int, end: int) -> int:
            node_id = len(starts)
            starts.append(start)
            ends.append(end)
            lefts.append(_NO_CHILD)
            rights.append(_NO_CHILD)
            pts = xy[self.perm[start:end]]
            if end > start:
                center = pts.mean(axis=0)
                radius = float(np.sqrt(((pts - center) ** 2).sum(axis=1).max()))
            else:
                center = np.zeros(2)
                radius = 0.0
            centers.append((float(center[0]), float(center[1])))
            radii.append(radius)
            if end - start > leaf_size:
                spread = pts.max(axis=0) - pts.min(axis=0)
                dim = 0 if spread[0] >= spread[1] else 1
                mid = (start + end) // 2
                seg = self.perm[start:end]
                part = np.argpartition(xy[seg, dim], mid - start)
                self.perm[start:end] = seg[part]
                left_id = build(start, mid)
                right_id = build(mid, end)
                lefts[node_id] = left_id
                rights[node_id] = right_id
            return node_id

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000))
        try:
            build(0, n)
        finally:
            sys.setrecursionlimit(old_limit)

        self.node_start = np.array(starts, dtype=np.int64)
        self.node_end = np.array(ends, dtype=np.int64)
        self.node_left = np.array(lefts, dtype=np.int64)
        self.node_right = np.array(rights, dtype=np.int64)
        self.node_center = np.array(centers, dtype=np.float64)
        self.node_radius = np.array(radii, dtype=np.float64)
        self.points = xy[self.perm]
        self.weights = None if weights is None else weights[self.perm]

        if num_channels > 0:
            chans = channel_values(self.points, num_channels, weights=self.weights)
            prefix = np.concatenate(
                [np.zeros((1, num_channels)), np.cumsum(chans, axis=0)]
            )
            self.node_agg = prefix[self.node_end] - prefix[self.node_start]
        else:
            self.node_agg = None

    @property
    def num_nodes(self) -> int:
        return len(self.node_start)

    def is_leaf(self, node: int) -> bool:
        return self.node_left[node] == _NO_CHILD

    def node_size(self, node: int) -> int:
        return int(self.node_end[node] - self.node_start[node])

    def min_dist_sq(self, node: int, qx: float, qy: float) -> float:
        cx, cy = self.node_center[node]
        d = math.hypot(qx - cx, qy - cy) - self.node_radius[node]
        d = max(d, 0.0)
        return d * d

    def max_dist_sq(self, node: int, qx: float, qy: float) -> float:
        cx, cy = self.node_center[node]
        d = math.hypot(qx - cx, qy - cy) + self.node_radius[node]
        return d * d

    def query_radius(self, qx: float, qy: float, radius: float) -> np.ndarray:
        """Indices (into the original array) of points within ``radius``."""
        r_sq = radius * radius
        hits: list[np.ndarray] = []
        stack = [0]
        while stack:
            node = stack.pop()
            if self.node_size(node) == 0:
                continue
            if self.min_dist_sq(node, qx, qy) > r_sq:
                continue
            if self.max_dist_sq(node, qx, qy) <= r_sq:
                hits.append(self.perm[self.node_start[node] : self.node_end[node]])
                continue
            if self.is_leaf(node):
                start, end = self.node_start[node], self.node_end[node]
                pts = self.points[start:end]
                d_sq = (pts[:, 0] - qx) ** 2 + (pts[:, 1] - qy) ** 2
                hits.append(self.perm[start:end][d_sq <= r_sq])
            else:
                stack.append(int(self.node_left[node]))
                stack.append(int(self.node_right[node]))
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(hits)

    def count_radius(self, qx: float, qy: float, radius: float) -> int:
        return len(self.query_radius(qx, qy, radius))
