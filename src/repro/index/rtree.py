"""A from-scratch STR-packed R-tree [Leutenegger et al. 1997 packing].

A third range-query index for the RQS baseline family, demonstrating that
RQS's O(XYn) worst case is index-independent (paper Section 2.2 makes the
argument for kd-trees and ball trees; the R-tree is the index GIS systems
such as PostGIS actually use).

Construction is Sort-Tile-Recursive bulk loading: points are sorted by x,
cut into vertical slabs of ~sqrt(n/leaf_size) leaves each, each slab sorted
by y and cut into leaves.  Internal levels pack the same way over child MBR
centers, giving a fully balanced tree in O(n log n).  The flat-array node
layout matches :class:`repro.index.kdtree.KDTree` (children are contiguous
ranges of the level below instead of binary pairs), and the same
``query_radius`` / ``min_dist_sq`` / ``max_dist_sq`` interface is exposed so
the RQS driver can use any of the three indexes interchangeably.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.kernels import channel_values

__all__ = ["RTree"]


class RTree:
    """STR bulk-loaded R-tree over an ``(n, 2)`` coordinate array.

    Parameters
    ----------
    xy:
        Point coordinates.
    leaf_size:
        Target number of points per leaf.
    fanout:
        Maximum children per internal node.
    num_channels / weights:
        As in :class:`~repro.index.kdtree.KDTree`: optional per-node
        aggregate channel sums for O(1) inside-support contributions.
    """

    def __init__(
        self,
        xy: np.ndarray,
        leaf_size: int = 32,
        fanout: int = 8,
        num_channels: int = 0,
        weights: np.ndarray | None = None,
    ):
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        n = len(xy)
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (n,):
                raise ValueError(f"weights must have shape ({n},), got {weights.shape}")
        self.leaf_size = leaf_size
        self.fanout = fanout
        self.num_channels = num_channels

        #: permutation into STR (leaf-contiguous) order
        self.perm = self._str_pack_points(xy, leaf_size)
        self.points = xy[self.perm]
        self.weights = None if weights is None else weights[self.perm]

        # Build leaf level: contiguous chunks of the permuted points.
        leaf_bounds = []
        leaf_ranges = []
        for start in range(0, max(n, 1), leaf_size):
            end = min(start + leaf_size, n)
            if end <= start:
                break
            pts = self.points[start:end]
            leaf_bounds.append(
                (pts[:, 0].min(), pts[:, 1].min(), pts[:, 0].max(), pts[:, 1].max())
            )
            leaf_ranges.append((start, end))
        if not leaf_ranges:  # empty dataset: one empty leaf as the root
            leaf_bounds = [(0.0, 0.0, 0.0, 0.0)]
            leaf_ranges = [(0, 0)]

        # Pack levels bottom-up until a single root remains.  The leaves are
        # already in STR (spatially coherent) order, so each internal node
        # simply takes the next ``fanout`` consecutive nodes of the level
        # below — the standard packed-R-tree construction.  Consecutive
        # grouping keeps both the child ids and the underlying point ranges
        # contiguous, which the flat layout and node aggregates rely on.
        bboxes: list[tuple[float, float, float, float]] = list(leaf_bounds)
        starts = [r[0] for r in leaf_ranges]
        ends = [r[1] for r in leaf_ranges]
        child_start = [-1] * len(leaf_ranges)
        child_end = [-1] * len(leaf_ranges)

        level_ids = list(range(len(leaf_ranges)))
        while len(level_ids) > 1:
            next_ids = []
            for group_start in range(0, len(level_ids), fanout):
                group = level_ids[group_start : group_start + fanout]
                node_id = len(bboxes)
                gb = np.array([bboxes[g] for g in group])
                bboxes.append(
                    (gb[:, 0].min(), gb[:, 1].min(), gb[:, 2].max(), gb[:, 3].max())
                )
                starts.append(min(starts[g] for g in group))
                ends.append(max(ends[g] for g in group))
                child_start.append(group[0])
                child_end.append(group[-1] + 1)
                next_ids.append(node_id)
            level_ids = next_ids

        self.root = level_ids[0]
        self.node_bbox = np.array(bboxes, dtype=np.float64)
        self.node_start = np.array(starts, dtype=np.int64)
        self.node_end = np.array(ends, dtype=np.int64)
        self.child_start = np.array(child_start, dtype=np.int64)
        self.child_end = np.array(child_end, dtype=np.int64)

        if num_channels > 0:
            chans = channel_values(self.points, num_channels, weights=self.weights)
            prefix = np.concatenate(
                [np.zeros((1, num_channels)), np.cumsum(chans, axis=0)]
            )
            self.node_agg = prefix[self.node_end] - prefix[self.node_start]
        else:
            self.node_agg = None

    @staticmethod
    def _str_pack_points(xy: np.ndarray, group_size: int) -> np.ndarray:
        """Sort-Tile-Recursive ordering: x-slabs, then y within each slab."""
        n = len(xy)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        num_groups = math.ceil(n / group_size)
        num_slabs = max(1, math.ceil(math.sqrt(num_groups)))
        slab_points = num_slabs * group_size  # points per vertical slab
        by_x = np.argsort(xy[:, 0], kind="stable")
        order = np.empty(n, dtype=np.int64)
        for slab_start in range(0, n, slab_points):
            slab = by_x[slab_start : slab_start + slab_points]
            slab_by_y = slab[np.argsort(xy[slab, 1], kind="stable")]
            order[slab_start : slab_start + len(slab)] = slab_by_y
        return order

    # -- interface shared with KDTree/BallTree --------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.node_bbox)

    def is_leaf(self, node: int) -> bool:
        return self.child_start[node] < 0

    def node_size(self, node: int) -> int:
        return int(self.node_end[node] - self.node_start[node])

    def children(self, node: int) -> range:
        return range(int(self.child_start[node]), int(self.child_end[node]))

    def min_dist_sq(self, node: int, qx: float, qy: float) -> float:
        xmin, ymin, xmax, ymax = self.node_bbox[node]
        dx = max(xmin - qx, 0.0, qx - xmax)
        dy = max(ymin - qy, 0.0, qy - ymax)
        return dx * dx + dy * dy

    def max_dist_sq(self, node: int, qx: float, qy: float) -> float:
        xmin, ymin, xmax, ymax = self.node_bbox[node]
        dx = max(qx - xmin, xmax - qx)
        dy = max(qy - ymin, ymax - qy)
        return dx * dx + dy * dy

    def query_radius(self, qx: float, qy: float, radius: float) -> np.ndarray:
        """Indices (into the original array) of points within ``radius``."""
        r_sq = radius * radius
        hits: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if self.node_size(node) == 0:
                continue
            if self.min_dist_sq(node, qx, qy) > r_sq:
                continue
            if self.max_dist_sq(node, qx, qy) <= r_sq:
                hits.append(self.perm[self.node_start[node] : self.node_end[node]])
                continue
            if self.is_leaf(node):
                start, end = self.node_start[node], self.node_end[node]
                pts = self.points[start:end]
                d_sq = (pts[:, 0] - qx) ** 2 + (pts[:, 1] - qy) ** 2
                hits.append(self.perm[start:end][d_sq <= r_sq])
            else:
                stack.extend(self.children(node))
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(hits)

    def count_radius(self, qx: float, qy: float, radius: float) -> int:
        return len(self.query_radius(qx, qy, radius))
