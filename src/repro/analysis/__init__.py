"""Hotspot analysis on top of KDV grids."""

from .hotspots import Hotspot, extract_hotspots, label_regions, track_hotspots

__all__ = ["Hotspot", "extract_hotspots", "label_regions", "track_hotspots"]
