"""Hotspot extraction and tracking on KDV grids.

KDV's purpose is hotspot *detection* (paper Figure 1): analysts want the
discrete hotspots, not just a colored raster.  This module turns density
grids into hotspot objects:

* :func:`label_regions` — connected-component labeling of a boolean mask
  (two-pass union-find, 4- or 8-connectivity, implemented from scratch);
* :func:`extract_hotspots` — threshold a :class:`KDVResult` at a density
  quantile and return per-hotspot statistics (pixel area, world area, peak
  density, peak location, density-weighted centroid);
* :func:`track_hotspots` — match hotspots across consecutive STKDV frames by
  pixel overlap, producing tracks (born / moved / died) for outbreak-style
  temporal analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import KDVResult

__all__ = ["Hotspot", "label_regions", "extract_hotspots", "track_hotspots"]


def label_regions(mask: np.ndarray, connectivity: int = 4) -> tuple[np.ndarray, int]:
    """Label connected True regions of a boolean mask.

    Two-pass algorithm with union-find: the first pass assigns provisional
    labels and records equivalences from already-visited neighbors; the
    second pass resolves them to consecutive ids ``1..count`` (0 =
    background).

    Parameters
    ----------
    mask:
        2-D boolean array.
    connectivity:
        4 (edge neighbors) or 8 (edges + diagonals).

    Returns
    -------
    ``(labels, count)`` — an int array of ``mask.shape`` and the number of
    regions.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError("mask must be 2-D")
    if connectivity not in (4, 8):
        raise ValueError("connectivity must be 4 or 8")
    height, width = mask.shape
    labels = np.zeros((height, width), dtype=np.int64)
    parent: list[int] = [0]  # union-find over provisional labels; 0 unused

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    # neighbors already visited in raster order
    if connectivity == 4:
        offsets = [(-1, 0), (0, -1)]
    else:
        offsets = [(-1, -1), (-1, 0), (-1, 1), (0, -1)]

    next_label = 1
    for j in range(height):
        for i in range(width):
            if not mask[j, i]:
                continue
            neighbor_labels = []
            for dj, di in offsets:
                nj, ni = j + dj, i + di
                if 0 <= nj < height and 0 <= ni < width and labels[nj, ni]:
                    neighbor_labels.append(int(labels[nj, ni]))
            if not neighbor_labels:
                labels[j, i] = next_label
                parent.append(next_label)
                next_label += 1
            else:
                smallest = min(neighbor_labels)
                labels[j, i] = smallest
                for other in neighbor_labels:
                    union(smallest, other)

    # second pass: resolve to consecutive ids
    remap = np.zeros(next_label, dtype=np.int64)
    count = 0
    for lbl in range(1, next_label):
        root = find(lbl)
        if remap[root] == 0:
            count += 1
            remap[root] = count
        remap[lbl] = remap[root]
    if next_label > 1:
        labels = remap[labels]
    return labels, count


@dataclass(frozen=True)
class Hotspot:
    """One connected high-density region of a KDV grid."""

    #: label id within its frame (1-based)
    label: int
    #: number of pixels
    pixel_area: int
    #: area in world units (pixels * pixel area)
    world_area: float
    #: highest density inside the hotspot
    peak_density: float
    #: world coordinates of the peak pixel center
    peak_xy: tuple[float, float]
    #: density-weighted centroid in world coordinates
    centroid_xy: tuple[float, float]
    #: total density mass (sum over pixels)
    mass: float
    #: boolean pixel mask of this hotspot (grid-shaped)
    mask: np.ndarray

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Hotspot(label={self.label}, pixels={self.pixel_area}, "
            f"peak={self.peak_density:.3g} @ {self.peak_xy})"
        )


def extract_hotspots(
    result: KDVResult,
    quantile: float = 0.99,
    min_pixels: int = 1,
    connectivity: int = 4,
) -> list[Hotspot]:
    """Extract hotspot objects from a KDV result.

    Thresholds at the given positive-density quantile (the same rule as
    :meth:`KDVResult.hotspot_pixels`), labels connected regions, and filters
    out regions below ``min_pixels``.  Hotspots are returned ordered by
    descending peak density.
    """
    if min_pixels < 1:
        raise ValueError("min_pixels must be >= 1")
    mask = result.hotspot_pixels(quantile=quantile)
    labels, count = label_regions(mask, connectivity=connectivity)
    raster = result.raster
    xs = raster.x_centers()
    ys = raster.y_centers()
    pixel_area = raster.gx * raster.gy
    grid = result.grid

    hotspots: list[Hotspot] = []
    for lbl in range(1, count + 1):
        region_mask = labels == lbl
        n_pixels = int(region_mask.sum())
        if n_pixels < min_pixels:
            continue
        jj, ii = np.nonzero(region_mask)
        values = grid[jj, ii]
        peak_idx = int(np.argmax(values))
        mass = float(values.sum())
        if mass > 0:
            cx = float((values * xs[ii]).sum() / mass)
            cy = float((values * ys[jj]).sum() / mass)
        else:
            cx = float(xs[ii].mean())
            cy = float(ys[jj].mean())
        hotspots.append(
            Hotspot(
                label=lbl,
                pixel_area=n_pixels,
                world_area=n_pixels * pixel_area,
                peak_density=float(values[peak_idx]),
                peak_xy=(float(xs[ii[peak_idx]]), float(ys[jj[peak_idx]])),
                centroid_xy=(cx, cy),
                mass=mass,
                mask=region_mask,
            )
        )
    hotspots.sort(key=lambda h: h.peak_density, reverse=True)
    return hotspots


def track_hotspots(
    frames: "list[list[Hotspot]]",
    min_overlap: float = 0.2,
) -> list[list[tuple[int, Hotspot]]]:
    """Link hotspots across consecutive frames into tracks.

    Two hotspots in consecutive frames are the *same* hotspot when the
    pixel overlap of their masks is at least ``min_overlap`` of the smaller
    mask.  Greedy matching by descending overlap; unmatched hotspots start
    new tracks.

    Parameters
    ----------
    frames:
        Per-frame hotspot lists (e.g. ``[extract_hotspots(f) for f in
        stkdv.frames]``).

    Returns
    -------
    A list of tracks; each track is a list of ``(frame_index, Hotspot)``
    pairs in frame order.
    """
    if not 0.0 < min_overlap <= 1.0:
        raise ValueError("min_overlap must be in (0, 1]")
    tracks: list[list[tuple[int, Hotspot]]] = []
    open_tracks: list[list[tuple[int, Hotspot]]] = []

    for frame_idx, hotspots in enumerate(frames):
        # score all (open track, hotspot) pairs by overlap
        candidates = []
        for t_idx, track in enumerate(open_tracks):
            prev = track[-1][1]
            for h_idx, spot in enumerate(hotspots):
                inter = int((prev.mask & spot.mask).sum())
                smaller = min(prev.pixel_area, spot.pixel_area)
                if smaller and inter / smaller >= min_overlap:
                    candidates.append((inter / smaller, t_idx, h_idx))
        candidates.sort(reverse=True)
        matched_tracks: set[int] = set()
        matched_spots: set[int] = set()
        for _score, t_idx, h_idx in candidates:
            if t_idx in matched_tracks or h_idx in matched_spots:
                continue
            open_tracks[t_idx].append((frame_idx, hotspots[h_idx]))
            matched_tracks.add(t_idx)
            matched_spots.add(h_idx)
        # tracks that found no continuation are closed
        still_open = []
        for t_idx, track in enumerate(open_tracks):
            if t_idx in matched_tracks:
                still_open.append(track)
            else:
                tracks.append(track)
        open_tracks = still_open
        # unmatched hotspots start new tracks
        for h_idx, spot in enumerate(hotspots):
            if h_idx not in matched_spots:
                open_tracks.append([(frame_idx, spot)])
    tracks.extend(open_tracks)
    tracks.sort(key=lambda t: (t[0][0], -len(t)))
    return tracks
