"""Grid comparison metrics.

The paper argues exactness matters because approximate KDVs can mislead
hotspot analysis.  These metrics quantify how far an approximate grid strays
from the exact one, in the terms that matter to the application:

* :func:`max_abs_error` / :func:`relative_linf` — worst-pixel error (the
  guarantee Z-order/aKDE trade away);
* :func:`rmse` — average-case error;
* :func:`hotspot_jaccard` — do the two grids *identify the same hotspots*?
  (Jaccard overlap of the top-quantile pixel sets);
* :func:`peak_displacement` — how far the reported hottest pixel moved, in
  pixels.

Used by the accuracy/efficiency trade-off benchmark and available to users
evaluating their own tolerance settings.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "max_abs_error",
    "relative_linf",
    "rmse",
    "hotspot_jaccard",
    "peak_displacement",
]


def _check(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"grid shapes differ: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("grids are empty")
    return a, b


def max_abs_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """L-infinity distance between the grids."""
    approx, exact = _check(approx, exact)
    return float(np.abs(approx - exact).max())


def relative_linf(approx: np.ndarray, exact: np.ndarray) -> float:
    """L-infinity error relative to the exact grid's peak (0 when both
    grids are identically zero)."""
    approx, exact = _check(approx, exact)
    peak = float(exact.max())
    err = float(np.abs(approx - exact).max())
    if peak == 0.0:
        return 0.0 if err == 0.0 else math.inf
    return err / peak


def rmse(approx: np.ndarray, exact: np.ndarray) -> float:
    """Root-mean-square error over all pixels."""
    approx, exact = _check(approx, exact)
    return float(np.sqrt(((approx - exact) ** 2).mean()))


def hotspot_jaccard(
    approx: np.ndarray, exact: np.ndarray, quantile: float = 0.99
) -> float:
    """Jaccard overlap of the two grids' top-``quantile`` pixel sets.

    1.0 means the approximate map flags exactly the same hotspots; values
    below ~0.8 mean an analyst would be shown visibly different hotspots.
    Both masks are taken against each grid's own positive-density quantile.
    """
    approx, exact = _check(approx, exact)
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")

    def mask(grid: np.ndarray) -> np.ndarray:
        positive = grid[grid > 0]
        if positive.size == 0:
            return np.zeros(grid.shape, dtype=bool)
        return grid >= np.quantile(positive, quantile)

    a_mask, e_mask = mask(approx), mask(exact)
    union = (a_mask | e_mask).sum()
    if union == 0:
        return 1.0
    return float((a_mask & e_mask).sum() / union)


def peak_displacement(approx: np.ndarray, exact: np.ndarray) -> float:
    """Euclidean pixel distance between the two grids' argmax pixels."""
    approx, exact = _check(approx, exact)
    ay, ax = np.unravel_index(np.argmax(approx), approx.shape)
    ey, ex = np.unravel_index(np.argmax(exact), exact.shape)
    return float(math.hypot(float(ax) - float(ex), float(ay) - float(ey)))
