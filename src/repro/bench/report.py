"""Machine-readable benchmark reports.

Every benchmark module writes, next to its paper-shaped ``.txt`` table, a
schema-versioned ``BENCH_<name>.json`` so results can be diffed across
commits, plotted, or checked in CI without scraping text.  The JSON carries
enough provenance to reproduce the run: git SHA, host info, the
``REPRO_BENCH_*`` knobs in effect, wall-clock per cell, and (when the run
attached a :class:`~repro.obs.Recorder`) the full per-phase recorder dump.

Timeout cells (the paper's "> 14400" entries, represented in memory by the
:data:`~repro.bench.harness.TIMEOUT` infinity sentinel) are encoded as
``{"value": null, "timeout": true}`` — the files stay strict JSON, which has
no infinity literal.

See ``docs/benchmarks.md`` for the full schema reference.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Mapping

from .harness import TIMEOUT

__all__ = [
    "BENCH_REPORT_SCHEMA",
    "BENCH_REPORT_VERSION",
    "BenchReport",
    "git_revision",
    "host_info",
    "bench_env",
    "validate_report",
    "load_report",
]

#: Schema identifier embedded in every report file.
BENCH_REPORT_SCHEMA = "repro.bench.report"
#: Bump when the report layout changes incompatibly.
BENCH_REPORT_VERSION = 1

#: The environment knobs that shape a benchmark run; recorded verbatim so a
#: report is interpretable without the shell history that produced it.
_ENV_KNOBS = (
    "REPRO_BENCH_SCALE",
    "REPRO_BENCH_RESOLUTION",
    "REPRO_BENCH_BUDGET",
    "REPRO_BENCH_MAX_CELL",
    "REPRO_BENCH_PARALLEL_RESOLUTION",
    "REPRO_BENCH_PARALLEL_N",
    "REPRO_BENCH_PARALLEL_BACKEND",
    "REPRO_BENCH_SERVE_N",
    "REPRO_BENCH_SERVE_REQUESTS",
    "REPRO_BENCH_SERVE_CLIENTS",
    "REPRO_BENCH_SERVE_TILE",
    "REPRO_BENCH_SERVE_SEED",
    "REPRO_BENCH_SIMLOAD_SCENARIO",
    "REPRO_BENCH_SIMLOAD_SEED",
    "REPRO_BENCH_SIMLOAD_DURATION",
)


def git_revision(cwd: "str | Path | None" = None) -> dict[str, Any]:
    """``{"sha": ..., "dirty": ...}`` of the enclosing checkout.

    Benchmarks may run outside a git checkout (an sdist, a container);
    both fields are ``None`` then rather than failing the report.
    """
    base = str(cwd) if cwd is not None else str(Path(__file__).resolve().parent)
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=base, capture_output=True, text=True, timeout=10,
        )
        if sha.returncode != 0:
            return {"sha": None, "dirty": None}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=base, capture_output=True, text=True, timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"sha": sha.stdout.strip(), "dirty": dirty}
    except (OSError, subprocess.TimeoutExpired):
        return {"sha": None, "dirty": None}


def host_info() -> dict[str, Any]:
    """Hardware/interpreter context a timing is meaningless without."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def bench_env() -> dict[str, str]:
    """The ``REPRO_BENCH_*`` knobs currently set (only those that are)."""
    return {k: os.environ[k] for k in _ENV_KNOBS if k in os.environ}


def _json_cell_value(value: Any) -> tuple[Any, bool]:
    """Map a cell value to (JSON value, timed-out?)."""
    if isinstance(value, float) and value == TIMEOUT:
        return None, True
    return value, False


class BenchReport:
    """Accumulates one benchmark module's results and writes the JSON file.

    Parameters
    ----------
    name:
        Report name; the file is ``BENCH_<name>.json``.
    title:
        Human-readable one-liner (same string as the text table's title).
    unit:
        What cell values measure: ``"seconds"`` (default) or e.g. ``"MiB"``
        for the space experiment.
    key_fields:
        Names of the cell-key components, in order (e.g.
        ``["method", "dataset"]``), so consumers can interpret keys without
        guessing.
    """

    def __init__(
        self,
        name: str,
        title: str = "",
        unit: str = "seconds",
        key_fields: "list[str] | None" = None,
    ):
        self.name = name
        self.title = title
        self.unit = unit
        self.key_fields = list(key_fields) if key_fields else []
        self.cells: list[dict[str, Any]] = []
        self.meta: dict[str, Any] = {}
        self.recorder_snapshot: "dict | None" = None
        self.peak_memory_bytes: "int | None" = None
        self._start = time.perf_counter()

    def add_cell(self, key, value, **extra: Any) -> None:
        """Record one cell.  ``key`` is a tuple (or scalar) identifying the
        cell; ``value`` is the measurement (:data:`TIMEOUT` for skips);
        ``extra`` fields (e.g. ``peak_memory_bytes=...``) ride along."""
        if not isinstance(key, (tuple, list)):
            key = (key,)
        json_value, timed_out = _json_cell_value(value)
        cell: dict[str, Any] = {
            "key": list(key),
            "value": json_value,
            "timeout": timed_out,
        }
        for k, v in extra.items():
            v2, _ = _json_cell_value(v)
            cell[k] = v2
        self.cells.append(cell)

    def add_cells(self, cells: Mapping) -> None:
        """Record a whole ``{key: value}`` dict (the benches' ``_cells``)."""

        def sort_key(k):
            parts = k if isinstance(k, (tuple, list)) else (k,)
            return [str(p) for p in parts]

        for key in sorted(cells, key=sort_key):
            self.add_cell(key, cells[key])

    def attach_recorder(self, recorder) -> None:
        """Embed a recorder's snapshot (phase timings + counters + spans)."""
        self.recorder_snapshot = recorder.snapshot() if recorder is not None else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": BENCH_REPORT_SCHEMA,
            "version": BENCH_REPORT_VERSION,
            "name": self.name,
            "title": self.title,
            "unit": self.unit,
            "key_fields": self.key_fields,
            "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "git": git_revision(),
            "host": host_info(),
            "env": bench_env(),
            "wall_clock_s": time.perf_counter() - self._start,
            "peak_memory_bytes": self.peak_memory_bytes,
            "meta": self.meta,
            "cells": self.cells,
            "recorder": self.recorder_snapshot,
        }

    def write(self, out_dir: "str | Path") -> Path:
        """Write ``BENCH_<name>.json`` into ``out_dir``; returns the path."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"BENCH_{self.name}.json"
        payload = self.to_dict()
        validate_report(payload)  # never write a file our own reader rejects
        path.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")
        return path


def validate_report(obj: Any) -> dict[str, Any]:
    """Check an object against the report schema; returns it or raises
    ``ValueError`` naming the first violation.  Used by the tests, the CI
    smoke job, and :meth:`BenchReport.write` itself."""
    if not isinstance(obj, dict):
        raise ValueError("report must be a JSON object")
    if obj.get("schema") != BENCH_REPORT_SCHEMA:
        raise ValueError(
            f"schema must be {BENCH_REPORT_SCHEMA!r}, got {obj.get('schema')!r}"
        )
    version = obj.get("version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"version must be a positive int, got {version!r}")
    if version > BENCH_REPORT_VERSION:
        raise ValueError(
            f"report version {version} is newer than supported "
            f"{BENCH_REPORT_VERSION}"
        )
    for field, types in (
        ("name", str), ("unit", str), ("git", dict), ("host", dict),
        ("cells", list),
    ):
        if not isinstance(obj.get(field), types):
            raise ValueError(f"field {field!r} missing or mistyped")
    if not obj["name"]:
        raise ValueError("name must be non-empty")
    for i, cell in enumerate(obj["cells"]):
        if not isinstance(cell, dict):
            raise ValueError(f"cells[{i}] must be an object")
        if not isinstance(cell.get("key"), list) or not cell["key"]:
            raise ValueError(f"cells[{i}].key must be a non-empty list")
        value = cell.get("value")
        if value is not None and not isinstance(value, (int, float)):
            raise ValueError(f"cells[{i}].value must be a number or null")
        if not isinstance(cell.get("timeout"), bool):
            raise ValueError(f"cells[{i}].timeout must be a bool")
        if value is None and not cell["timeout"]:
            raise ValueError(f"cells[{i}] has no value but is not a timeout")
    recorder = obj.get("recorder")
    if recorder is not None:
        if not isinstance(recorder, dict) or "phases" not in recorder:
            raise ValueError("recorder must be null or a recorder snapshot")
    return obj


def load_report(path: "str | Path") -> dict[str, Any]:
    """Read and validate a ``BENCH_*.json`` file."""
    with open(path) as fh:
        return validate_report(json.load(fh))
