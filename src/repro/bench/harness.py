"""Benchmark harness utilities.

The paper reports wall-clock response time per (method, dataset, parameter)
cell and a 4-hour timeout.  This module provides the measurement and
reporting pieces the ``benchmarks/`` scripts share:

* :func:`time_call` — wall-clock one invocation;
* :class:`MethodTimer` — times a method across a parameter sweep with a soft
  time budget: once a method exceeds the budget at some parameter value it is
  marked timed-out and skipped for costlier parameter values (mirroring the
  paper's "> 14400" entries without burning hours);
* :func:`measure_peak_memory` — tracemalloc peak for the space experiment
  (Figure 17);
* :func:`format_table` / :func:`format_series` — aligned text output shaped
  like the paper's Table 7 rows and figure series.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "time_call",
    "MethodTimer",
    "measure_peak_memory",
    "format_table",
    "format_series",
    "TIMEOUT",
]

#: Sentinel recorded when a cell was skipped because the method already
#: exceeded its soft budget at a cheaper parameter value.
TIMEOUT = float("inf")


def time_call(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Wall-clock one call; returns ``(seconds, result)``."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


@dataclass
class MethodTimer:
    """Times one method across increasingly expensive parameter values.

    Parameters are assumed to be swept cheap-to-expensive (as in the paper's
    resolution/size ladders); once a run exceeds ``soft_budget_s`` the
    remaining cells are recorded as :data:`TIMEOUT`.
    """

    name: str
    soft_budget_s: float = 60.0
    times: list[float] = field(default_factory=list)
    _exhausted: bool = False

    def run(self, fn: Callable[[], Any]) -> float:
        """Run (or skip) one sweep cell; returns seconds or ``TIMEOUT``."""
        if self._exhausted:
            self.times.append(TIMEOUT)
            return TIMEOUT
        elapsed, _ = time_call(fn)
        self.times.append(elapsed)
        if elapsed > self.soft_budget_s:
            self._exhausted = True
        return elapsed


def measure_peak_memory(fn: Callable[[], Any]) -> tuple[int, Any]:
    """Peak traced allocation (bytes) during ``fn()``; ``(peak, result)``."""
    tracemalloc.start()
    try:
        result = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, result


def _format_cell(value: Any, width: int) -> str:
    if isinstance(value, float):
        text = "timeout" if value == TIMEOUT else f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(headers: list[str], rows: list[list[Any]], title: str = "") -> str:
    """Render an aligned text table (Table 7 style)."""
    str_rows = [
        [("timeout" if isinstance(v, float) and v == TIMEOUT else f"{v:.3f}")
         if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: list[Any],
    series: dict[str, list[float]],
    title: str = "",
) -> str:
    """Render figure-style series (one row per method, one column per x)."""
    headers = [x_label] + [str(x) for x in x_values]
    rows = [[name] + list(times) for name, times in series.items()]
    return format_table(headers, rows, title=title)
