"""Shared benchmark workload configuration.

The paper's experiments run four million-scale datasets at up to 2560x1920
pixels on a C++ implementation with a 4-hour timeout.  Our benchmarks
reproduce every sweep at a configurable *scale* so a complete run finishes in
minutes in CI while preserving the comparisons' shape; set the environment
variable ``REPRO_BENCH_SCALE=1.0`` (and a generous budget) to run at the
paper's full dataset sizes.

Knobs (environment variables, all optional):

``REPRO_BENCH_SCALE``
    Fraction of each dataset's full size to generate (default 0.01, i.e.
    ~8.6k-43k points — large enough that method rankings are stable).
``REPRO_BENCH_RESOLUTION``
    Base resolution ``X`` as an integer; ``Y = 3 X / 4`` like the paper's
    1280x960 (default 160, i.e. 160x120).
``REPRO_BENCH_BUDGET``
    Per-cell soft time budget in seconds for slow baselines (default 20).
"""

from __future__ import annotations

import os

from ..core.kernels import get_kernel
from ..data.datasets import load_dataset
from ..data.points import PointSet
from ..viz.bandwidth import scott_bandwidth
from ..viz.region import Raster, Region

__all__ = [
    "bench_scale",
    "bench_budget",
    "base_resolution",
    "resolution_ladder",
    "bench_dataset",
    "bench_raster",
    "default_bandwidth",
    "SIZE_FRACTIONS",
    "BANDWIDTH_RATIOS",
    "ZOOM_RATIOS",
]

#: The paper's dataset-size ladder (Figures 14, 17, 19).
SIZE_FRACTIONS = (0.25, 0.5, 0.75, 1.0)
#: The paper's bandwidth multipliers (Figure 15).
BANDWIDTH_RATIOS = (0.25, 0.5, 1.0, 2.0, 4.0)
#: The paper's zoom ratios (Figure 16a/b).
ZOOM_RATIOS = (0.25, 0.5, 0.75, 1.0)


def bench_scale() -> float:
    """Dataset scale factor for benchmark runs."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))


def bench_budget() -> float:
    """Per-cell soft time budget (seconds) for slow baselines."""
    return float(os.environ.get("REPRO_BENCH_BUDGET", "20"))


def base_resolution() -> tuple[int, int]:
    """The benchmark's stand-in for the paper's default 1280x960."""
    x = int(os.environ.get("REPRO_BENCH_RESOLUTION", "160"))
    return x, max(1, (x * 3) // 4)


def resolution_ladder() -> list[tuple[int, int]]:
    """Four resolutions quadrupling in pixel count, like the paper's
    320x240 / 640x480 / 1280x960 / 2560x1920 ladder, centered on the
    configured base resolution."""
    x, _ = base_resolution()
    return [(x // 2, (x // 2) * 3 // 4), (x, x * 3 // 4), (x * 2, (x * 2) * 3 // 4), (x * 4, x * 3)]


def bench_dataset(name: str, scale: float | None = None) -> PointSet:
    """Load a benchmark dataset at the configured scale."""
    return load_dataset(name, scale=bench_scale() if scale is None else scale)


def default_bandwidth(points: PointSet) -> float:
    """The paper's default: Scott's rule on the dataset."""
    return scott_bandwidth(points.xy)


def bench_raster(points: PointSet, size: tuple[int, int]) -> Raster:
    """A raster over the dataset MBR at the requested resolution."""
    region = Region.from_points(points.xy)
    return Raster(region, size[0], size[1])


def grid_callable(
    method_name: str,
    points: PointSet,
    raster: Raster,
    kernel_name: str,
    bandwidth: float,
    **kwargs,
):
    """A zero-argument callable computing one KDV grid (for the timers)."""
    from ..core.api import METHODS

    fn, _exact = METHODS[method_name]
    kernel = get_kernel(kernel_name)

    def call():
        return fn(points.xy, raster, kernel, bandwidth, **kwargs)

    return call
