"""Benchmark harness: timing, memory, tables, and shared workloads."""

from .harness import (
    TIMEOUT,
    MethodTimer,
    format_series,
    format_table,
    measure_peak_memory,
    time_call,
)
from .workloads import (
    BANDWIDTH_RATIOS,
    SIZE_FRACTIONS,
    ZOOM_RATIOS,
    base_resolution,
    bench_budget,
    bench_dataset,
    bench_raster,
    bench_scale,
    default_bandwidth,
    grid_callable,
    resolution_ladder,
)

__all__ = [
    "time_call",
    "MethodTimer",
    "measure_peak_memory",
    "format_table",
    "format_series",
    "TIMEOUT",
    "bench_scale",
    "bench_budget",
    "base_resolution",
    "resolution_ladder",
    "bench_dataset",
    "bench_raster",
    "default_bandwidth",
    "grid_callable",
    "SIZE_FRACTIONS",
    "BANDWIDTH_RATIOS",
    "ZOOM_RATIOS",
]
