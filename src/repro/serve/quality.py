"""Quality tiers: graceful degradation for the tile server.

Under load the service used to face a binary choice — render an exact
sweep or shed the request with a 503.  This module turns the repo's two
offline approximations into first-class *serving tiers* so backpressure
degrades quality tier by tier before ever shedding load:

``exact``
    The full SLAM sweep of :func:`~repro.viz.tiles.render_tile`; error
    bound 0 by construction.

``pyramid:<k>``
    An *exact* KDV rendered at ``1/2^k`` of the tile resolution and
    nearest-neighbor upsampled (:func:`pyramid_grid`) — the serving form
    of :func:`~repro.extensions.progressive.progressive_kdv`'s rungs (the
    two are bit-identical for matching region/size/kwargs).  Error comes
    only from coarseness, and is calibrated per ingest generation.

``coreset:<m>``
    The full-resolution KDV of a Z-order coreset of size ``m``, scaled by
    ``n/m`` (:func:`coreset_grid`) — the serving form of
    :func:`~repro.baselines.zorder.zorder_grid` [Zheng et al.], evaluated
    through the configured SLAM method instead of the chunked SCAN
    baseline (identical result, faster).  The advertised bound combines
    the theoretical ``eps(m) = 1/sqrt(m)`` sizing inverse
    (:func:`~repro.baselines.zorder.epsilon_for`) with a measured
    calibration.

**Error model.**  A tier's error for a tile is the L-infinity distance to
the exact tile, *relative to the dataset's global density peak* (the
level-0 tile's maximum) — per-tile peaks vary wildly across a pyramid, so
normalizing globally keeps one number meaningful for every tile.
:func:`calibrate` measures each degraded tier against an exact render of
the reference tile ``(0, 0, 0)`` at a modest calibration resolution, once
per ingest generation, and advertises
``max(theory, measured * error_headroom, error_floor)``.  The bounds are
exposed per view via ``/metricz`` and per response via the
``X-KDV-Error-Bound`` header.

**Degradation ladder.**  :class:`QualityPolicy` orders the tiers best
first (``exact``, then the pyramid levels, then the coresets).  Tier ``i``
admits a request while the service's load (in-flight pool renders plus
active degraded renders) is below ``queue_limit + i * tier_headroom`` —
so as saturation grows, successive requests step down the ladder, and 503
is reached only past the cheapest tier.  ``?quality=<tier>`` pins a tier
explicitly; ``?max_error=<eps>`` filters the ladder to tiers whose
advertised bound fits.  See ``docs/quality.md`` for the full contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..baselines.zorder import epsilon_for
from ..core.api import compute_kdv
from ..extensions.progressive import upsample_preview
from ..index.zorder_curve import zorder_argsort

__all__ = [
    "EXACT",
    "QualityError",
    "QualityPolicy",
    "Tier",
    "TileResponse",
    "calibrate",
    "coreset_grid",
    "measured_error",
    "parse_tier",
    "pyramid_grid",
]


class QualityError(ValueError):
    """A malformed or unservable quality request (the HTTP layer's 400)."""


@dataclass(frozen=True)
class Tier:
    """One rung of the degradation ladder.

    ``kind`` is ``"exact"``, ``"pyramid"`` or ``"coreset"``; ``param`` is
    the pyramid level or coreset size (``None`` for exact).
    """

    kind: str
    param: "int | None" = None

    @property
    def name(self) -> str:
        """The wire name (``exact``, ``pyramid:<k>``, ``coreset:<m>``)."""
        if self.param is None:
            return self.kind
        return f"{self.kind}:{self.param}"


EXACT = Tier("exact")


def parse_tier(value) -> Tier:
    """Parse a ``?quality=`` value (``exact`` / ``pyramid:<k>`` /
    ``coreset:<m>``) into a :class:`Tier`; raises :class:`QualityError`."""
    if isinstance(value, Tier):
        return value
    text = str(value).strip()
    if text == "exact":
        return EXACT
    kind, sep, param = text.partition(":")
    if sep and kind in ("pyramid", "coreset"):
        try:
            number = int(param)
        except ValueError:
            number = -1
        if number >= 1:
            return Tier(kind, number)
    raise QualityError(
        f"bad quality tier {value!r}: expected 'exact', 'pyramid:<level>' "
        f"or 'coreset:<size>'"
    )


class QualityPolicy:
    """Maps load state and request hints to a serving tier.

    Parameters
    ----------
    pyramid_levels:
        Coarsening exponents served as ``pyramid:<k>`` tiers, best first
        (level ``k`` renders at ``1/2^k`` resolution).
    coreset_sizes:
        Z-order sample sizes served as ``coreset:<m>`` tiers, best
        (largest) first.
    tier_headroom:
        Extra load admitted per ladder rung: tier ``i`` (0 = exact)
        admits while ``load < queue_limit + i * tier_headroom``.
    error_headroom:
        Safety factor on the measured calibration error when advertising
        a bound.
    error_floor:
        Minimum advertised bound for a degraded tier (degraded output is
        never advertised as perfect).
    calibration_size:
        Resolution (pixels per axis) of the reference-tile renders used
        by :func:`calibrate` — modest by design, so calibrating costs a
        small fraction of one exact tile.
    degraded_ttl_s:
        Cache TTL for degraded tiles; short, so they age out quickly even
        if background refinement never gets pool time.
    default_max_error:
        Server-side cap applied when a request carries no ``max_error``
        hint (``None`` = no cap).
    """

    def __init__(
        self,
        pyramid_levels: "tuple[int, ...]" = (1, 2),
        coreset_sizes: "tuple[int, ...]" = (4096, 1024),
        *,
        tier_headroom: int = 1,
        error_headroom: float = 3.0,
        error_floor: float = 1e-6,
        calibration_size: int = 64,
        degraded_ttl_s: float = 5.0,
        default_max_error: "float | None" = None,
    ):
        pyramid_levels = tuple(int(k) for k in pyramid_levels)
        coreset_sizes = tuple(int(m) for m in coreset_sizes)
        if any(k < 1 for k in pyramid_levels):
            raise ValueError("pyramid levels must be >= 1")
        if list(pyramid_levels) != sorted(set(pyramid_levels)):
            raise ValueError("pyramid_levels must be strictly increasing")
        if any(m < 1 for m in coreset_sizes):
            raise ValueError("coreset sizes must be >= 1")
        if list(coreset_sizes) != sorted(set(coreset_sizes), reverse=True):
            raise ValueError("coreset_sizes must be strictly decreasing")
        if not pyramid_levels and not coreset_sizes:
            raise ValueError("the policy needs at least one degraded tier")
        if tier_headroom < 1:
            raise ValueError("tier_headroom must be >= 1")
        if error_headroom < 1.0:
            raise ValueError("error_headroom must be >= 1.0")
        if error_floor < 0:
            raise ValueError("error_floor must be >= 0")
        if calibration_size < 1:
            raise ValueError("calibration_size must be >= 1")
        if degraded_ttl_s <= 0:
            raise ValueError("degraded_ttl_s must be positive")
        if default_max_error is not None:
            default_max_error = float(default_max_error)
            if not math.isfinite(default_max_error) or default_max_error < 0:
                raise ValueError("default_max_error must be finite and >= 0")
        self.pyramid_levels = pyramid_levels
        self.coreset_sizes = coreset_sizes
        self.tier_headroom = int(tier_headroom)
        self.error_headroom = float(error_headroom)
        self.error_floor = float(error_floor)
        self.calibration_size = int(calibration_size)
        self.degraded_ttl_s = float(degraded_ttl_s)
        self.default_max_error = default_max_error
        self._ladder = (
            EXACT,
            *(Tier("pyramid", k) for k in pyramid_levels),
            *(Tier("coreset", m) for m in coreset_sizes),
        )

    def ladder(self) -> "tuple[Tier, ...]":
        """The degradation ladder, best tier first (``exact`` at index 0)."""
        return self._ladder

    def theoretical_bound(self, tier: Tier, n: int) -> float:
        """The analysis-backed part of a tier's bound (0 when none exists:
        pyramid error is coarseness-only and purely measured)."""
        if tier.kind == "coreset":
            return epsilon_for(tier.param, n)
        return 0.0

    def describe(self) -> dict:
        """The ``/metricz`` summary of the policy's configuration."""
        return {
            "ladder": [tier.name for tier in self._ladder],
            "tier_headroom": self.tier_headroom,
            "error_headroom": self.error_headroom,
            "error_floor": self.error_floor,
            "calibration_size": self.calibration_size,
            "degraded_ttl_s": self.degraded_ttl_s,
            "default_max_error": self.default_max_error,
        }


# -- tier renderers (shared by the service, the tests, and bench_quality) ----


def pyramid_grid(
    points,
    region,
    size: "tuple[int, int]",
    *,
    level: int,
    bandwidth: float,
    kernel: str = "epanechnikov",
    method: str = "slam_bucket_rao",
    engine: str = "numpy_batch",
    ysorted=None,
) -> np.ndarray:
    """Exact KDV at ``1/2^level`` resolution, upsampled back to ``size``.

    Bit-identical to upsampling the corresponding
    :func:`~repro.extensions.progressive.progressive_kdv` rung: the coarse
    render is ``compute_kdv`` at ``max(1, size // 2^level)`` per axis with
    ``normalization="none"`` and the upsample is
    :func:`~repro.extensions.progressive.upsample_preview`.  Degraded
    renders run synchronously on request threads, so the default engine is
    the block-vectorized ``numpy_batch`` (bit-identical to ``numpy``,
    pinned by the engine-equivalence tests, materially cheaper in the
    small-workload regime these tiers live in).
    """
    if level < 1:
        raise ValueError("level must be >= 1")
    width, height = size
    shrink = 1 << level
    coarse = (max(1, width // shrink), max(1, height // shrink))
    kwargs = {} if ysorted is None else {"ysorted": ysorted}
    result = compute_kdv(
        points,
        region=region,
        size=coarse,
        kernel=kernel,
        bandwidth=bandwidth,
        method=method,
        engine=engine,
        normalization="none",
        **kwargs,
    )
    return upsample_preview(result, (width, height))


def coreset_grid(
    points,
    region,
    size: "tuple[int, int]",
    *,
    sample_size: int,
    bandwidth: float,
    kernel: str = "epanechnikov",
    method: str = "slam_bucket_rao",
    engine: str = "numpy_batch",
    order: "np.ndarray | None" = None,
) -> np.ndarray:
    """Full-resolution KDV of a Z-order coreset, scaled back to ``n/m``.

    The sample is the same evenly spaced Z-order subsequence as
    :func:`~repro.baselines.zorder.zorder_sample`; evaluation runs through
    the configured (SLAM) ``method`` instead of the chunked SCAN baseline —
    mathematically identical, materially faster.  The default ``engine``
    is ``numpy_batch`` (see :func:`pyramid_grid`): a small-``m`` sample
    swept at full resolution is exactly the per-row-overhead-dominated
    regime the batch engine targets.  ``order`` accepts a precomputed
    ``zorder_argsort`` of the points (the service caches one per ingest
    generation); ``sample_size >= n`` degenerates to the exact render of
    all points.
    """
    if sample_size < 1:
        raise ValueError("sample_size must be >= 1")
    xy = np.asarray(points, dtype=np.float64)
    n = len(xy)
    width, height = size
    if n == 0:
        return np.zeros((height, width), dtype=np.float64)
    if sample_size >= n:
        sample, scale = xy, 1.0
    else:
        if order is None:
            order = zorder_argsort(xy)
        positions = (
            (np.arange(sample_size) + 0.5) * n / sample_size
        ).astype(np.int64)
        sample = xy[order[positions]]
        scale = n / sample_size
    grid = compute_kdv(
        sample,
        region=region,
        size=size,
        kernel=kernel,
        bandwidth=bandwidth,
        method=method,
        engine=engine,
        normalization="none",
    ).grid
    return grid * scale


def measured_error(
    approx: np.ndarray, exact: np.ndarray, peak: "float | None" = None
) -> float:
    """L-infinity distance relative to ``peak`` (the exact grid's maximum
    by default; pass the global level-0 peak to compare tiles across a
    pyramid on one scale).  ``0.0`` when both grids are flat zero."""
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    diff = float(np.abs(approx - exact).max()) if exact.size else 0.0
    peak = float(exact.max()) if peak is None else float(peak)
    if peak <= 0.0:
        return 0.0 if diff == 0.0 else math.inf
    return diff / peak


def calibrate(
    policy: QualityPolicy,
    points,
    scheme,
    *,
    bandwidth: float,
    kernel: str = "epanechnikov",
    method: str = "slam_bucket_rao",
    order: "np.ndarray | None" = None,
) -> "dict[str, float]":
    """Measure every degraded tier against the reference tile, once.

    Renders the reference tile ``(0, 0, 0)`` exactly at the policy's
    calibration resolution, then through each degraded tier, and returns
    ``{tier name: advertised bound}`` where the bound is
    ``max(theory, measured * error_headroom, error_floor)`` (theory is
    the coreset sizing inverse ``eps(m)``; pyramid has no analytic term).
    The service runs this lazily, once per ingest generation per view.
    """
    xy = np.asarray(points, dtype=np.float64)
    n = len(xy)
    size = (policy.calibration_size, policy.calibration_size)
    region = scheme.tile_region(0, 0, 0)
    bounds: "dict[str, float]" = {EXACT.name: 0.0}
    if n == 0:
        for tier in policy.ladder()[1:]:
            bounds[tier.name] = policy.error_floor
        return bounds
    exact = compute_kdv(
        xy,
        region=region,
        size=size,
        kernel=kernel,
        bandwidth=bandwidth,
        method=method,
        normalization="none",
    ).grid
    peak = float(exact.max())
    for tier in policy.ladder()[1:]:
        if tier.kind == "pyramid":
            approx = pyramid_grid(
                xy, region, size, level=tier.param,
                bandwidth=bandwidth, kernel=kernel, method=method,
            )
        else:
            approx = coreset_grid(
                xy, region, size, sample_size=tier.param,
                bandwidth=bandwidth, kernel=kernel, method=method,
                order=order,
            )
        measured = measured_error(approx, exact, peak)
        bounds[tier.name] = max(
            policy.theoretical_bound(tier, n),
            measured * policy.error_headroom,
            policy.error_floor,
        )
    return bounds


@dataclass(frozen=True)
class TileResponse:
    """One served tile plus its quality metadata (the header contract:
    ``tier`` feeds ``X-KDV-Quality``, ``error_bound`` feeds
    ``X-KDV-Error-Bound``)."""

    grid: np.ndarray
    tier: str
    error_bound: float

    @property
    def degraded(self) -> bool:
        return self.tier != EXACT.name
