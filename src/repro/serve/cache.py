"""Thread-safe TTL + LRU tile cache.

The serving layer caches rendered tiles under concurrent access, which the
plain :class:`~repro.viz.tiles.TileRenderer` LRU was never built for.  This
cache adds, on top of LRU capacity eviction:

* a per-entry **TTL** (entries older than ``ttl_s`` read as misses and are
  dropped), so a long-running server eventually refreshes tiles even without
  explicit invalidation;
* **key invalidation** (:meth:`invalidate`), the hook live ingest uses to
  drop exactly the tiles a batch touched;
* a single internal lock so every operation is atomic under threads.

Hit/miss/eviction/expiry totals are plain integers read without the lock
(stale reads are fine for metrics); the owning service mirrors them into its
:class:`~repro.obs.Recorder`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import monotonic
from typing import Any, Callable, Hashable, Iterable

__all__ = ["TTLCache"]

_MISSING = object()


class TTLCache:
    """A bounded, thread-safe mapping with LRU eviction and optional TTL.

    Parameters
    ----------
    capacity:
        Maximum number of live entries; the least recently used entry is
        evicted when a store would exceed it.
    ttl_s:
        Seconds after which an entry expires (``None`` disables expiry).
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        capacity: int,
        ttl_s: "float | None" = None,
        clock: Callable[[], float] = monotonic,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive or None")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (value, expires_at | None), insertion order = recency
        self._entries: "OrderedDict[Hashable, tuple[Any, float | None]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        """Live (non-expired) entry count.

        Expired-but-unread entries are purged first so sizes reported to
        metrics (``serve.cache_size``, ``/metricz`` ``tiles_cached``) never
        overstate what a reader could actually hit.
        """
        with self._lock:
            self._purge_expired()
            return len(self._entries)

    def _purge_expired(self) -> int:
        """Drop every entry past its TTL (caller holds the lock); returns
        how many were dropped (each counted as an expiration).  Checks
        per-entry deadlines, so entries stored with a ``put(ttl_s=...)``
        override expire even when the cache has no default TTL."""
        if not self._entries:
            return 0
        now = self._clock()
        stale = [
            key
            for key, (_value, expires_at) in self._entries.items()
            if expires_at is not None and now >= expires_at
        ]
        for key in stale:
            del self._entries[key]
        self.expirations += len(stale)
        return len(stale)

    def get(self, key: Hashable, default: Any = None, count: bool = True) -> Any:
        """The cached value, bumping recency; expired entries read as misses.

        ``count=False`` skips the hit/miss tallies — for double-check probes
        that re-examine a key already counted once (the single-flight path),
        so the stats stay one-tally-per-request.
        """
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                if count:
                    self.misses += 1
                return default
            value, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self.expirations += 1
                if count:
                    self.misses += 1
                return default
            self._entries.move_to_end(key)
            if count:
                self.hits += 1
            return value

    def put(self, key: Hashable, value: Any, ttl_s: "float | None" = None) -> int:
        """Store a value; returns how many entries were evicted (0 or 1).

        ``ttl_s`` overrides the cache-wide TTL for this entry (the serving
        layer stores degraded tiles with a short per-entry TTL so they age
        out fast even in a cache with no default expiry).
        """
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive or None")
        effective = self.ttl_s if ttl_s is None else float(ttl_s)
        now = self._clock()
        expires_at = None if effective is None else now + effective
        with self._lock:
            self._entries[key] = (value, expires_at)
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.capacity:
                _key, (_value, old_expires) = self._entries.popitem(last=False)
                # popping a dead entry is an expiration, not a capacity
                # eviction — the distinction keeps the eviction counter an
                # honest measure of cache pressure
                if old_expires is not None and now is not None and now >= old_expires:
                    self.expirations += 1
                else:
                    self.evictions += 1
                    evicted += 1
            return evicted

    def invalidate(self, keys: Iterable[Hashable]) -> int:
        """Drop the given keys; returns how many were present."""
        dropped = 0
        with self._lock:
            for key in keys:
                if self._entries.pop(key, None) is not None:
                    dropped += 1
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> list:
        """A snapshot of the live (non-expired) keys (oldest first)."""
        with self._lock:
            self._purge_expired()
            return list(self._entries)
