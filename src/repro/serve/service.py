"""`TileService`: the concurrent heart of the KDV tile server.

The paper positions SLAM as the engine behind interactive web KDV tools
(KDV-Explorer); serving that workload means many clients hammering the same
small set of visible tiles while a live feed appends events.  The service
composes five mechanisms, each individually simple:

**Single-flight coalescing.**
    N concurrent requests for the same cold ``(zoom, tx, ty)`` trigger
    exactly one SLAM render; the leader submits a future and the other N-1
    join it.  With a pan/zoom crowd the render rate is bounded by the number
    of *distinct* visible tiles, not the request rate.

**Bounded render pool with backpressure.**
    Renders run on a fixed :class:`~concurrent.futures.ThreadPoolExecutor`.
    When the number of in-flight renders reaches ``queue_limit`` the service
    refuses new *distinct* tiles with :class:`ServiceOverloaded` (HTTP 503 +
    ``Retry-After``) instead of queueing unboundedly — joining an existing
    render is always allowed, since it adds no work.  A per-request deadline
    turns slow renders into :class:`ServiceTimeout` (HTTP 504) for the
    waiter; the render itself completes and warms the cache.

**TTL + LRU tile cache with targeted invalidation.**
    Rendered tiles live in a :class:`~repro.serve.cache.TTLCache`.  Ingest
    and window expiry drop exactly the tiles whose region intersects the
    changed batches' MBRs inflated by one bandwidth
    (:func:`~repro.serve.invalidate.affected_tiles`) — everything else is
    provably unchanged, because finite-support kernels reach at most one
    bandwidth.

**Live ingest through the streaming engine.**
    Inserts route through :class:`~repro.extensions.streaming.StreamingKDV`,
    which maintains an always-fresh overview grid incrementally (the
    additive decomposition the paper's real-time plans rest on); the
    overview's peak anchors a stable color scale for ``.png`` tiles.
    A version counter keeps renders that started before an ingest from
    polluting the cache afterwards, and the generation's shared y-sorted
    index (one O(n log n) sort serving every tile render of that
    generation) is dropped and lazily rebuilt.

**Quality degradation ladder.**
    With a :class:`~repro.serve.quality.QualityPolicy` attached, a
    saturated pool no longer means an immediate 503: requests step down a
    ladder of degraded tiers — exact, then ``pyramid:<k>`` (exact KDV at
    ``1/2^k`` resolution, upsampled), then ``coreset:<m>`` (Z-order sample
    of size m, with a calibrated epsilon error bound) — before load is
    shed only past the cheapest tier.  Degraded renders run synchronously
    on the request thread (they are cheap by construction, and the pool is
    by definition busy), cache in per-tier namespaces with short TTLs, and
    are refined to exact renders in the background once the pool drains.
    See :mod:`repro.serve.quality` and ``docs/quality.md``.

**Sliding-window views.**
    ``window=<seconds>`` requests serve tiles over only the trailing window
    of the timestamped feed.  Each distinct window is a
    :class:`~repro.serve.window.WindowView` — its own maintained
    :class:`~repro.extensions.streaming.StreamingKDV`, version counter,
    y-sorted index, and cache namespace (keys carry the window length) —
    advanced by :meth:`tick`: expiry is one signed O(Δ) grid update, and
    only tiles in the union of the expired batches' inflated MBRs are
    invalidated, never the whole pyramid.  Ticks run on the ``tick_s``
    schedule (piggybacked on request traffic — no background thread) or via
    an explicit :meth:`tick` / ``POST /tick``.

Everything is observable: the wired-in :class:`~repro.obs.Recorder` carries
request/coalescing/backpressure counters, render/ingest/tick phases, window
counters (``window.ticks``, ``window.expired_points``, ``window.rebuilds``,
``window.drift``), and queue-depth gauges (see ``docs/serving.md`` for the
metric name table).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from time import monotonic
from typing import Callable

import numpy as np

from ..core.api import PARALLEL_METHODS
from ..extensions.streaming import StreamingKDV
from ..obs import Recorder
from ..viz.tiles import TileScheme, render_tile
from .cache import TTLCache
from .invalidate import affected_tiles
from .quality import (
    EXACT,
    QualityError,
    QualityPolicy,
    Tier,
    TileResponse,
    calibrate,
    coreset_grid,
    parse_tier,
    pyramid_grid,
)
from .window import WindowError, WindowView, window_seconds

__all__ = [
    "TileService",
    "PendingTile",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceTimeout",
]


class ServiceClosed(RuntimeError):
    """The service is shutting down and accepts no new work."""


class ServiceOverloaded(RuntimeError):
    """The render queue is full; retry after :attr:`retry_after_s` seconds."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceTimeout(TimeoutError):
    """The per-request deadline elapsed before the render finished."""


class PendingTile:
    """A tile answer that is still rendering on the pool.

    Returned by :meth:`TileService.request_tile` with ``wait=False`` instead
    of blocking on the render future — the seam the :mod:`repro.simload`
    discrete-event simulator drives the service through: the caller owns the
    wait, so a simulator can decide *in virtual time* when the render
    completes before collecting the response.  ``key`` is the render's
    cache/in-flight key (view-namespaced); joiners of one in-flight render
    share one underlying future.
    """

    __slots__ = ("key", "future", "_service", "_view", "_tier")

    def __init__(self, service, view, tier, key, future):
        self._service = service
        self._view = view
        self._tier = tier
        self.key = key
        self.future = future

    def done(self) -> bool:
        """Whether the underlying render has finished."""
        return self.future.done()

    def resolve(self, timeout: "float | None" = None) -> TileResponse:
        """Block (up to ``timeout``) for the render and build the response.

        Raises exactly what the blocking :meth:`TileService.request_tile`
        path would: :class:`ServiceTimeout` past the timeout,
        :class:`ServiceClosed` if shutdown cancelled the render.
        """
        return self._service._await_render(
            self._view, self._tier, self.key, self.future, timeout
        )


class TileService:
    """Concurrent, cache-coherent KDV tile serving over a live dataset.

    Parameters
    ----------
    points:
        Initial dataset: an ``(n, 2)`` array or :class:`~repro.data.points.PointSet`.
        A :class:`~repro.data.points.PointSet` with timestamps seeds the
        time axis (its ``t`` feeds the sliding-window machinery).
    scheme:
        Tile addressing; defaults to the initial dataset's squared MBR.
        Live ingest outside the level-0 world still works (tiles are exact
        for whatever falls inside their region), the pyramid just does not
        grow to cover it.
    tile_size, bandwidth, kernel, method:
        Render parameters, shared by every tile (fixed per service, as in a
        deployed map layer).
    max_zoom:
        Deepest zoom level served (``zoom > max_zoom`` raises ``ValueError``,
        the HTTP layer's 404).
    workers:
        Render pool size.
    queue_limit:
        Maximum in-flight renders (running + queued) before new distinct
        tiles are refused with :class:`ServiceOverloaded`.  Defaults to
        ``4 * workers``.
    deadline_s:
        Default per-request wait bound (``None`` = wait indefinitely).
    cache_tiles, cache_ttl_s:
        Tile cache capacity and optional expiry (shared across all views).
    window_s:
        Sliding-window length in seconds, created eagerly at construction
        (requires a timestamped seed).  Further windows are created lazily
        by ``window=`` tile requests; ``window_s`` is the one the CLI's
        ``--window`` pre-warms.
    tick_s:
        Window advance cadence.  Ticks piggyback on request traffic (the
        first :meth:`get_tile`/:meth:`ingest` at least ``tick_s`` after the
        previous tick runs one) — no background thread, so an idle service
        does no work.  ``None`` leaves ticking fully explicit.
    max_windows:
        Maximum number of distinct live window views; further ``window=``
        values are refused with :class:`~repro.serve.window.WindowError`
        (HTTP 400) instead of letting clients mint unbounded maintained
        state.
    window_rebuild_every:
        Forwarded to each window view's
        :class:`~repro.extensions.streaming.StreamingKDV` — full rebuild
        (drift reset) after this many expiry batches.
    quality:
        Optional :class:`~repro.serve.quality.QualityPolicy`.  ``None``
        (the default) keeps the historical behavior: exact tiles only, a
        full queue is an immediate :class:`ServiceOverloaded`.  With a
        policy, overloaded requests degrade tier-by-tier down the policy's
        ladder before any 503, honoring ``quality=``/``max_error`` request
        hints; degraded tiles carry calibrated error bounds and are
        refined to exact in the background when the pool drains.
    recorder:
        The metrics sink; a fresh :class:`~repro.obs.Recorder` by default.
    clock:
        Monotonic time source (injectable for TTL/tick-schedule tests).
        The tick *schedule* runs on this clock; window *cutoffs* use event
        time (the ingested-timestamp watermark), so replayed feeds age
        correctly regardless of wall time.
    render_fn:
        Render override with the signature of
        :func:`~repro.viz.tiles.render_tile` (tests inject slow/controlled
        renders; production uses the default).
    submit_hook:
        Optional observer called (under the service lock) as
        ``submit_hook(key, future)`` every time a render is handed to the
        pool — cold-tile leaders and background refinements alike.  The
        :mod:`repro.simload` simulator uses it to mirror the pool in
        virtual time; it must be fast and must not call back into the
        service.
    coordinator:
        Optional :class:`repro.dist.Coordinator`: cold-tile renders then run
        with ``backend="dist"``, fanning each render's row shards out to the
        coordinator's worker pool (with its in-process fallback when no
        workers are reachable).  The coordinator is caller-owned — the
        service does not close it — and its distributed counters are folded
        into the :meth:`stats` dump so ``/metricz`` reports the distributed
        path.  Requires a SLAM ``method`` and no ``render_fn`` override.
    """

    def __init__(
        self,
        points,
        scheme: "TileScheme | None" = None,
        *,
        tile_size: int = 256,
        bandwidth: float = 500.0,
        kernel: str = "epanechnikov",
        method: str = "slam_bucket_rao",
        max_zoom: int = 8,
        workers: int = 2,
        queue_limit: "int | None" = None,
        deadline_s: "float | None" = None,
        cache_tiles: int = 256,
        cache_ttl_s: "float | None" = None,
        window_s: "float | None" = None,
        tick_s: "float | None" = None,
        max_windows: int = 4,
        window_rebuild_every: "int | None" = 1000,
        quality: "QualityPolicy | None" = None,
        recorder: "Recorder | None" = None,
        clock: Callable[[], float] = monotonic,
        render_fn=None,
        submit_hook=None,
        coordinator=None,
    ):
        from ..data.points import PointSet

        if isinstance(points, PointSet):
            xy, seed_t = points.xy, points.t
        else:
            xy, seed_t = np.asarray(points, float), None
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
        if len(xy) == 0:
            raise ValueError("cannot serve tiles for an empty dataset")
        if tile_size < 1:
            raise ValueError("tile_size must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_zoom < 0:
            raise ValueError("max_zoom must be >= 0")
        if queue_limit is None:
            queue_limit = 4 * workers
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive or None")
        if tick_s is not None and tick_s <= 0:
            raise ValueError("tick_s must be positive or None")
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")

        self.scheme = scheme or TileScheme.for_points(xy)
        self.tile_size = int(tile_size)
        self.bandwidth = float(bandwidth)
        self.kernel = kernel
        self.method = method
        self.max_zoom = int(max_zoom)
        self.workers = int(workers)
        self.queue_limit = int(queue_limit)
        self.deadline_s = deadline_s
        self.tick_s = tick_s
        self.max_windows = int(max_windows)
        self.window_rebuild_every = window_rebuild_every
        self.quality = quality
        self.recorder: Recorder = recorder if recorder is not None else Recorder()
        self._clock = clock
        self.coordinator = coordinator
        if coordinator is not None:
            if render_fn is not None:
                raise ValueError(
                    "coordinator and render_fn are mutually exclusive"
                )
            if method not in PARALLEL_METHODS:
                raise ValueError(
                    f"coordinator requires a SLAM method "
                    f"{PARALLEL_METHODS}, got {method!r}"
                )
            render_fn = self._render_distributed
        self._render_fn = render_fn if render_fn is not None else render_tile
        self._submit_hook = submit_hook

        # Served views, keyed by window length (None = the all-time view).
        # Each view owns a streaming engine (incrementally-maintained overview
        # grid + live batches), a point snapshot, a cache-guarding version
        # counter, and the generation's shared y-sorted index.
        base_stream = self._new_stream(require_timestamps=False)
        base_stream.insert(xy, seed_t)
        self._views: "dict[float | None, WindowView]" = {
            None: WindowView(None, base_stream)
        }
        if window_s is not None:
            seconds = window_seconds(window_s)
            if seed_t is None:
                raise ValueError(
                    "window_s requires a timestamped seed (a PointSet with "
                    "t set); untimestamped events can never expire"
                )
            self._views[seconds] = self._make_window_view(seconds)

        self._cache = TTLCache(cache_tiles, ttl_s=cache_ttl_s, clock=clock)
        self._lock = threading.Lock()
        self._inflight: dict[tuple, object] = {}
        # quality degradation state: synchronous degraded renders in
        # progress (they bypass the pool but still count as load), and the
        # queue of degraded serves awaiting background refinement to exact
        self._degraded_active = 0
        self._refine: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="kdv-render"
        )
        self._started = clock()
        self._last_tick = clock()
        self._window_ticks = 0
        self._window_expired = 0

    def _new_stream(self, require_timestamps: bool) -> StreamingKDV:
        return StreamingKDV(
            region=self.scheme.world,
            size=(min(self.tile_size, 256), min(self.tile_size, 256)),
            kernel=self.kernel,
            bandwidth=self.bandwidth,
            method=self.method,
            rebuild_every=self.window_rebuild_every,
            require_timestamps=require_timestamps,
        )

    # -- request path ------------------------------------------------------

    def check_key(self, zoom: int, tx: int, ty: int) -> None:
        """Raise ``ValueError`` unless ``(zoom, tx, ty)`` is a servable tile."""
        if zoom > self.max_zoom:
            raise ValueError(
                f"zoom {zoom} beyond the served pyramid (max_zoom={self.max_zoom})"
            )
        # delegates range checks (including zoom >= 0) to the scheme
        self.scheme.tile_region(zoom, tx, ty)

    def get_tile(
        self,
        zoom: int,
        tx: int,
        ty: int,
        deadline_s: "float | None | type[Ellipsis]" = ...,
        window: "float | str | None" = None,
        quality=None,
        max_error=None,
    ) -> np.ndarray:
        """The density grid of one tile (see :meth:`request_tile`, which
        this delegates to and whose :class:`~repro.serve.quality.TileResponse`
        carries the tier and error-bound metadata this form drops)."""
        return self.request_tile(
            zoom, tx, ty, deadline_s=deadline_s, window=window,
            quality=quality, max_error=max_error,
        ).grid

    def request_tile(
        self,
        zoom: int,
        tx: int,
        ty: int,
        deadline_s: "float | None | type[Ellipsis]" = ...,
        window: "float | str | None" = None,
        quality=None,
        max_error=None,
        wait: bool = True,
    ) -> "TileResponse | PendingTile":
        """One tile plus its quality metadata, rendered at most once
        concurrently per tier.

        ``window=<seconds>`` serves the tile over only the trailing window
        of the timestamped feed (creating the window view on first use);
        windowed tiles cache and invalidate independently of the all-time
        pyramid.  With a quality policy attached, ``quality=<tier>`` pins
        an explicit tier and ``max_error=<eps>`` restricts the ladder to
        tiers whose advertised bound fits; under load, requests degrade
        tier-by-tier down the ladder before any overload rejection.

        Raises ``ValueError`` for out-of-pyramid keys,
        :class:`~repro.serve.window.WindowError` for malformed or
        unservable windows, :class:`~repro.serve.quality.QualityError` for
        malformed or unservable quality hints, :class:`ServiceOverloaded`
        when even the cheapest admissible tier is saturated,
        :class:`ServiceTimeout` when the deadline elapses first, and
        :class:`ServiceClosed` during shutdown.  ``deadline_s`` overrides
        the service default for this request (``...`` keeps the default).

        ``wait=False`` never blocks on the render pool: when the answer
        requires waiting for an in-flight exact render, a
        :class:`PendingTile` is returned instead (its :meth:`~PendingTile.
        resolve` performs the wait) and ``deadline_s`` is ignored — the
        caller owns the deadline.  Everything answerable immediately (cache
        hits, synchronous degraded renders, rejections) behaves exactly as
        with ``wait=True``.
        """
        rec = self.recorder
        self.check_key(zoom, tx, ty)
        pinned = self._parse_quality(quality)
        max_error = self._parse_max_error(max_error)
        self._maybe_auto_tick()
        view = self._view_for(window)
        rec.count("serve.tile_requests")
        ladder = self._ladder_for(view, pinned, max_error)
        exact_key = view.cache_key(zoom, tx, ty)

        # cache probe, best admissible tier first; the first probe keeps
        # the historical one-tally-per-request hit/miss accounting
        grid = self._cache.get(self._tier_key(view, zoom, tx, ty, ladder[0]))
        if grid is not None:
            rec.count("tiles.cache.hits")
            return self._respond(view, ladder[0], grid)
        rec.count("tiles.cache.misses")
        for tier in ladder[1:]:
            grid = self._cache.get(
                self._tier_key(view, zoom, tx, ty, tier), count=False
            )
            if grid is not None:
                # a live degraded entry answers instantly; queue its
                # refinement so idle pool time upgrades it to exact
                with self._lock:
                    self._enqueue_refinement(view, (zoom, tx, ty))
                self._maybe_refine()
                rec.count(f"quality.served.{tier.kind}")
                return self._respond(view, tier, grid)

        chosen: "Tier | None" = None
        future = None
        version = 0
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shutting down")
            load = len(self._inflight) + self._degraded_active
            for i, tier in enumerate(ladder):
                if tier.kind == "exact":
                    future = self._inflight.get(exact_key)
                    if future is not None:
                        if len(ladder) == 1 or load < self.queue_limit:
                            rec.count("serve.coalesce.joined")
                            chosen = tier
                            break
                        # an exact render is already warming this tile, but
                        # the service is saturated: degrade instead of a
                        # potentially long join
                        future = None
                        continue
                    # the render may have landed between the cache probe and
                    # here (count=False: this request's miss is already
                    # tallied)
                    grid = self._cache.get(exact_key, count=False)
                    if grid is not None:
                        rec.count("tiles.cache.hits")
                        return self._respond(view, tier, grid)
                    if load < self.queue_limit:
                        rec.count("serve.coalesce.leaders")
                        future = self._pool.submit(
                            self._render_into_cache,
                            exact_key,
                            (zoom, tx, ty),
                            view,
                            view.version,
                            view.points,
                        )
                        self._inflight[exact_key] = future
                        rec.set_gauge("serve.queue_depth", len(self._inflight))
                        if self._submit_hook is not None:
                            self._submit_hook(exact_key, future)
                        chosen = tier
                        break
                    continue
                # degraded rung i admits while load < queue_limit +
                # i * tier_headroom: rising saturation steps requests down
                # the ladder; a pinned tier is always admitted (the client
                # asked for exactly this cheap render)
                if pinned is not None or load < (
                    self.queue_limit + i * self.quality.tier_headroom
                ):
                    chosen = tier
                    version = view.version
                    self._degraded_active += 1
                    break
            if chosen is None:
                rec.count("serve.rejected.overload")
                raise ServiceOverloaded(
                    f"render queue full ({self.queue_limit} in flight)",
                    retry_after_s=self._retry_after(),
                )

        if chosen.kind == "exact":
            if not wait:
                return PendingTile(self, view, chosen, exact_key, future)
            timeout = self.deadline_s if deadline_s is ... else deadline_s
            return self._await_render(view, chosen, exact_key, future, timeout)

        # degraded tiers render synchronously on the request thread: they
        # are cheap by construction and the pool is by definition busy
        try:
            with rec.span("quality.render"):
                grid = self._render_degraded(view, version, (zoom, tx, ty), chosen)
        finally:
            with self._lock:
                self._degraded_active -= 1
        grid = np.asarray(grid)
        grid.setflags(write=False)
        with self._lock:
            if version == view.version and not self._closed:
                evicted = self._cache.put(
                    self._tier_key(view, zoom, tx, ty, chosen),
                    grid,
                    ttl_s=self.quality.degraded_ttl_s,
                )
                if evicted:
                    rec.count("tiles.cache.evictions", evicted)
                self._enqueue_refinement(view, (zoom, tx, ty))
            else:
                rec.count("serve.render.stale")
        rec.count(f"quality.served.{chosen.kind}")
        self._maybe_refine()
        return self._respond(view, chosen, grid)

    def _await_render(
        self, view: WindowView, tier: Tier, key: tuple, future, timeout
    ) -> TileResponse:
        """Wait for a pool render and package its response (shared by the
        blocking :meth:`request_tile` path and :meth:`PendingTile.resolve`,
        so both count deadline rejections identically)."""
        try:
            grid = future.result(timeout=timeout)
        except FutureTimeoutError:
            self.recorder.count("serve.rejected.deadline")
            raise ServiceTimeout(
                f"tile {key} not rendered within {timeout:.3f}s"
            ) from None
        except CancelledError:
            # a queued render cancelled by shutdown before it started
            raise ServiceClosed(
                "service shut down before the render ran"
            ) from None
        return self._respond(view, tier, grid)

    def tile_image(
        self, zoom: int, tx: int, ty: int, colormap: str = "heat", **kwargs
    ) -> np.ndarray:
        """RGB tile (north-up) on the serving view's stable color scale."""
        grid = self.get_tile(zoom, tx, ty, **kwargs)
        return self.colorize_tile(grid, colormap=colormap,
                                  window=kwargs.get("window"))

    def colorize_tile(
        self, grid: np.ndarray, colormap: str = "heat", window=None
    ) -> np.ndarray:
        """Color one served grid on its view's stable scale (shared by
        :meth:`tile_image` and the HTTP ``.png`` path, which colors the
        grid of a :meth:`request_tile` response to keep its headers)."""
        from ..viz.colormap import colorize

        peak = self._view_for(window).color_peak()
        return colorize((grid / peak)[::-1], colormap)

    def _view_for(self, window: "float | str | None") -> WindowView:
        """Resolve a ``window=`` value to its view, creating it on first use.

        Lazy creation replays the all-time engine's batch history into a
        fresh windowed engine (skipping batches already entirely older than
        the window), so a cold ``window=`` request costs one sweep of the
        *live-window* points, not of all history.
        """
        if window is None:
            return self._views[None]
        seconds = window_seconds(window)
        with self._lock:
            view = self._views.get(seconds)
            if view is not None:
                return view
            if self._closed:
                raise ServiceClosed("service is shutting down")
            if len(self._views) - 1 >= self.max_windows:
                live = sorted(s for s in self._views if s is not None)
                raise WindowError(
                    f"too many distinct windows (max_windows="
                    f"{self.max_windows}); live windows: {live}"
                )
            view = self._make_window_view(seconds)
            self._views[seconds] = view
            return view

    def _make_window_view(self, seconds: float) -> WindowView:
        """Build the maintained view of the trailing ``seconds`` window
        (caller holds ``self._lock``, or is the constructor)."""
        base = self._views[None].stream
        batches = base.batches()
        if any(t is None for _xy, t in batches):
            raise WindowError(
                "window= requires a fully timestamped feed, but part of the "
                "history was ingested without timestamps"
            )
        watermark = base.latest_time
        cutoff = None if watermark is None else watermark - seconds
        stream = self._new_stream(require_timestamps=True)
        for xy, t in batches:
            # batches entirely older than the window would be inserted and
            # immediately expired — two wasted sweeps
            if cutoff is not None and float(t.max()) < cutoff:
                continue
            stream.insert(xy, t)
        if cutoff is not None:
            stream.expire_before(cutoff)
        return WindowView(seconds, stream)

    # -- quality tiers ------------------------------------------------------

    def _parse_quality(self, quality) -> "Tier | None":
        """Validate a ``quality=`` hint against the policy's ladder."""
        if quality is None:
            return None
        tier = parse_tier(quality)
        if tier.kind == "exact":
            return tier
        if self.quality is None:
            raise QualityError(
                "quality tiers are disabled (service has no quality "
                "policy); only quality=exact is served"
            )
        if tier not in self.quality.ladder():
            names = [t.name for t in self.quality.ladder()]
            raise QualityError(
                f"unknown quality tier {tier.name!r}; available: {names}"
            )
        return tier

    def _parse_max_error(self, max_error) -> "float | None":
        """Validate a ``max_error=`` hint; the policy's server-side default
        applies when the request carries none."""
        if max_error is None:
            return (
                self.quality.default_max_error
                if self.quality is not None
                else None
            )
        try:
            value = float(max_error)
        except (TypeError, ValueError):
            raise QualityError(
                f"max_error must be a number, got {max_error!r}"
            ) from None
        if not math.isfinite(value) or value < 0:
            raise QualityError(
                f"max_error must be finite and >= 0, got {max_error!r}"
            )
        return value

    def _ladder_for(
        self, view: WindowView, pinned: "Tier | None", max_error: "float | None"
    ) -> "tuple[Tier, ...]":
        """The admissible tiers for one request, best first.

        A pinned tier is the whole ladder (no fallback — the client asked
        for exactly that quality); a ``max_error`` cap filters the policy's
        ladder to tiers whose advertised bound fits (exact, bound 0,
        always qualifies, so the ladder is never empty).
        """
        if pinned is not None:
            return (pinned,)
        if self.quality is None:
            return (EXACT,)
        ladder = self.quality.ladder()
        if max_error is not None:
            bounds = self._quality_bounds(view)
            ladder = tuple(
                tier for tier in ladder
                if tier.kind == "exact"
                or bounds.get(tier.name, math.inf) <= max_error
            )
        return ladder

    def _tier_key(
        self, view: WindowView, zoom: int, tx: int, ty: int, tier: Tier
    ) -> tuple:
        return view.cache_key(zoom, tx, ty, tier.name)

    def _respond(self, view: WindowView, tier: Tier, grid) -> TileResponse:
        if tier.kind == "exact":
            return TileResponse(grid=grid, tier=EXACT.name, error_bound=0.0)
        bounds = self._quality_bounds(view)
        bound = bounds.get(tier.name)
        if bound is None:
            # a tier outside the calibrated set (policy changed mid-flight):
            # fall back to the analysis-backed bound
            bound = max(
                self.quality.theoretical_bound(tier, len(view.points)),
                self.quality.error_floor,
            )
        return TileResponse(grid=grid, tier=tier.name, error_bound=bound)

    def _render_degraded(
        self, view: WindowView, version: int, tile: tuple, tier: Tier
    ) -> np.ndarray:
        """One synchronous degraded render (pyramid or coreset tier)."""
        region = self.scheme.tile_region(*tile)
        size = (self.tile_size, self.tile_size)
        with self._lock:
            points = view.points
        if tier.kind == "pyramid":
            return pyramid_grid(
                points, region, size,
                level=tier.param,
                bandwidth=self.bandwidth,
                kernel=self.kernel,
                method=self.method,
                ysorted=self._ysorted_for(view, version),
            )
        return coreset_grid(
            points, region, size,
            sample_size=tier.param,
            bandwidth=self.bandwidth,
            kernel=self.kernel,
            method=self.method,
            order=self._zorder_for(view, version),
        )

    def _zorder_for(self, view: WindowView, version: int):
        """The view's current-generation shared Z-order permutation, built
        at most once per generation (``None`` for stale renders — same
        discipline as :meth:`_ysorted_for`)."""
        with self._lock:
            if version != view.version:
                return None
            order, built = view.build_zorder()
            if built:
                self.recorder.count("quality.zorder_builds")
            return order

    def _quality_bounds(self, view: WindowView) -> "dict[str, float]":
        """The view's calibrated quality bounds, measured at most once per
        ingest generation (lazily, on the first degraded serve or
        ``max_error``-filtered request of the generation)."""
        policy = self.quality
        if policy is None:
            return {EXACT.name: 0.0}
        with self._lock:
            if view.quality_bounds is not None:
                return view.quality_bounds
            version = view.version
            points = view.points
        order = self._zorder_for(view, version)
        with self.recorder.span("quality.calibrate"):
            bounds = calibrate(
                policy, points, self.scheme,
                bandwidth=self.bandwidth,
                kernel=self.kernel,
                method=self.method,
                order=order,
            )
        with self._lock:
            if view.version == version and view.quality_bounds is None:
                view.quality_bounds = bounds
                self.recorder.count("quality.calibrations")
            elif view.quality_bounds is not None:
                bounds = view.quality_bounds
        return bounds

    def _enqueue_refinement(self, view: WindowView, tile: tuple) -> None:
        """Remember a degraded serve so idle pool time upgrades it to an
        exact render (caller holds ``self._lock``)."""
        if self.quality is None or self._closed:
            return
        self._refine[(view.seconds, tile)] = (view, view.version, tile)

    def _maybe_refine(self) -> None:
        """Spend idle pool capacity refining degraded serves to exact.

        Runs only once the pool has fully drained (``_inflight`` empty) —
        refinement must never compete with live exact renders — and then
        submits queued refinements up to ``queue_limit``.  Called after
        every pool render completes and after every synchronous degraded
        render, so the queue drains as soon as load allows.
        """
        if self.quality is None:
            return
        rec = self.recorder
        with self._lock:
            if self._closed or self._inflight or not self._refine:
                return
            while self._refine and len(self._inflight) < self.queue_limit:
                _, (view, version, tile) = self._refine.popitem(last=False)
                if version != view.version:
                    continue  # a newer generation owns this tile now
                exact_key = view.cache_key(*tile)
                if exact_key in self._inflight:
                    continue
                if self._cache.get(exact_key, count=False) is not None:
                    continue  # already exact
                future = self._pool.submit(
                    self._refine_into_cache,
                    exact_key, tile, view, version, view.points,
                )
                self._inflight[exact_key] = future
                rec.set_gauge("serve.queue_depth", len(self._inflight))
                if self._submit_hook is not None:
                    self._submit_hook(exact_key, future)

    def _refine_into_cache(
        self, key: tuple, tile: tuple, view: WindowView, version: int,
        points: np.ndarray,
    ) -> np.ndarray:
        """A background exact render replacing a degraded serve: renders
        through the normal caching path, then drops the tile's degraded
        variants so the next request steps straight up to exact."""
        grid = self._render_into_cache(key, tile, view, version, points)
        with self._lock:
            if version == view.version:
                stale = [
                    k for k in self._cache.keys()
                    if len(k) == len(key) + 1
                    and k[: len(key)] == key
                    and isinstance(k[-1], str)
                ]
                self._cache.invalidate(stale)
                self.recorder.count("quality.refined")
        return grid

    def _render_into_cache(
        self,
        key: tuple,
        tile: tuple[int, int, int],
        view: WindowView,
        version: int,
        points: np.ndarray,
    ) -> np.ndarray:
        rec = self.recorder
        try:
            extra = {}
            ysorted = self._ysorted_for(view, version)
            if ysorted is not None:
                extra["ysorted"] = ysorted
            if getattr(self._render_fn, "wants_cache_key", False):
                # opt-in seam for instrumented render functions (the simload
                # gated renderer): the cache key uniquely names this render,
                # which tile coordinates alone cannot (windowed views reuse
                # them)
                extra["cache_key"] = key
            with rec.span("tiles.render"):
                grid = self._render_fn(
                    points,
                    self.scheme,
                    *tile,
                    tile_size=self.tile_size,
                    bandwidth=self.bandwidth,
                    kernel=self.kernel,
                    method=self.method,
                    **extra,
                )
            grid = np.asarray(grid)
            grid.setflags(write=False)  # shared across waiters and the cache
            with self._lock:
                if version == view.version:
                    evicted = self._cache.put(key, grid)
                    if evicted:
                        rec.count("tiles.cache.evictions", evicted)
                else:
                    # an ingest/tick landed mid-render: hand the grid to the
                    # waiters (it answers the request they made) but do not
                    # cache the now-stale tile
                    rec.count("serve.render.stale")
            return grid
        finally:
            with self._lock:
                self._inflight.pop(key, None)
                rec.set_gauge("serve.queue_depth", len(self._inflight))
            # a completed render may have drained the pool: spend the idle
            # capacity refining degraded serves to exact
            self._maybe_refine()

    def _render_distributed(self, points, scheme, zoom, tx, ty, **kwargs):
        """:func:`render_tile` with the sweep fanned out to the coordinator's
        worker pool (installed as ``_render_fn`` when a coordinator is set)."""
        return render_tile(
            points,
            scheme,
            zoom,
            tx,
            ty,
            backend="dist",
            coordinator=self.coordinator,
            **kwargs,
        )

    def _ysorted_for(self, view: WindowView, version: int):
        """The view's current-generation shared y-sorted index, built at most
        once per generation.

        ``None`` for non-SLAM methods (which cannot consume an index) and for
        stale renders (``version`` behind the view's): building an index for
        a dead generation would waste the sort *and* break the
        one-build-per-generation accounting, so a stale render just lets
        ``compute_kdv`` sort its own snapshot.  The build runs under
        :attr:`_lock`, so concurrent cold renders of one generation still
        produce exactly one build (one ``tiles.ysorted_builds`` count).
        """
        if self.method not in PARALLEL_METHODS:
            return None
        with self._lock:
            if version != view.version:
                return None
            index, built = view.build_ysorted()
            if built:
                self.recorder.count("tiles.ysorted_builds")
            return index

    def _retry_after(self) -> float:
        """503 Retry-After estimate: one average render, floored at 100 ms."""
        timer = self.recorder.timer("tiles.render")
        if timer.calls:
            return max(timer.total_seconds / timer.calls, 0.1)
        return 1.0

    # -- live ingest and window ticks --------------------------------------

    def ingest(self, xy, t=None) -> dict:
        """Insert a batch of events and invalidate exactly the tiles it touches.

        ``t`` carries per-event timestamps (seconds; any monotone epoch) —
        required once any window view is live, because an untimestamped
        batch could never expire out of a window.  The batch lands in
        *every* view (all-time and each window), each of which invalidates
        only its own affected tiles.

        Returns ``{"inserted", "invalidated", "points"}``.  Raises
        ``ValueError`` for malformed batches (before any state changes) and
        :class:`ServiceClosed` during shutdown.
        """
        rec = self.recorder
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
        if not np.all(np.isfinite(xy)):
            raise ValueError("batch coordinates must be finite")
        if t is not None:
            t = np.asarray(t, dtype=np.float64)
            if t.shape != (len(xy),):
                raise ValueError("t must match the batch length")
            if not np.all(np.isfinite(t)):
                raise ValueError("batch timestamps must be finite")
        rec.count("serve.ingest_requests")
        invalidated = 0
        with rec.span("serve.ingest"):
            with self._lock:
                if self._closed:
                    raise ServiceClosed("service is shutting down")
                if t is None and len(self._views) > 1:
                    raise ValueError(
                        "window views are live; every ingest batch needs "
                        "per-event timestamps (t), or it could never expire"
                    )
                if len(xy):
                    for view in self._views.values():
                        view.stream.insert(xy, t)
                        view.bump()
                        invalidated += self._invalidate_affected([xy], view)
        rec.count("serve.ingested_points", len(xy))
        rec.count("serve.invalidated_tiles", invalidated)
        self._maybe_auto_tick()
        return {
            "inserted": int(len(xy)),
            "invalidated": int(invalidated),
            "points": self.points_count,
        }

    def tick(self, now: "float | None" = None) -> dict:
        """Advance every window view: expire events older than the window.

        ``now`` is the event-time reference; it defaults to the ingest
        watermark (the largest timestamp ever seen), so a replayed feed ages
        in its own clock.  Each view's expiry is one signed O(Δ) grid update
        (one sweep of the expired points), and only the tiles in the union
        of the expired batches' inflated MBRs are invalidated — tiles
        outside that set are provably byte-identical and stay cached.

        Returns a summary dict; with no window views live it is a cheap
        no-op.  Raises :class:`ServiceClosed` during shutdown.
        """
        rec = self.recorder
        results: list[dict] = []
        total_expired = 0
        total_invalidated = 0
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shutting down")
            self._last_tick = self._clock()
            windows = [v for v in self._views.values() if v.seconds is not None]
            if now is None:
                now = self._views[None].stream.latest_time
            if windows and now is not None:
                with rec.span("window.tick"):
                    for view in windows:
                        cutoff = now - view.seconds
                        rebuilds_before = view.stream.rebuilds
                        removed, expired = view.stream.expire_before(
                            cutoff, collect=True
                        )
                        invalidated = 0
                        if removed:
                            view.bump()
                            invalidated = self._invalidate_affected(expired, view)
                        rebuilt = view.stream.rebuilds - rebuilds_before
                        if rebuilt:
                            rec.count("window.rebuilds", rebuilt)
                            rec.set_gauge(
                                "window.drift", view.stream.last_rebuild_drift
                            )
                        total_expired += removed
                        total_invalidated += invalidated
                        results.append(
                            {
                                "window": view.seconds,
                                "expired": removed,
                                "invalidated": invalidated,
                                "points": len(view.stream),
                            }
                        )
                self._window_ticks += 1
                self._window_expired += total_expired
                rec.count("window.ticks")
                rec.count("window.expired_points", total_expired)
        return {
            "now": None if now is None else float(now),
            "windows": results,
            "expired": int(total_expired),
            "invalidated": int(total_invalidated),
            "ticks": self._window_ticks,
        }

    def _maybe_auto_tick(self) -> None:
        """Run a scheduled tick if ``tick_s`` has elapsed since the last one.

        Piggybacks on request traffic (called from :meth:`get_tile` and
        :meth:`ingest`), so there is no background thread and an idle
        service does no work; the first request after a quiet stretch pays
        one tick.
        """
        if self.tick_s is None or len(self._views) <= 1:
            return
        if self._clock() - self._last_tick >= self.tick_s:
            self.tick()

    def _invalidate_affected(self, batches, view: WindowView) -> int:
        """Drop the view's cached tiles intersecting any batch MBR + one
        bandwidth — the union of the batches' affected sets, mapped into the
        view's cache namespace (every quality tier of an affected tile is
        dropped: degraded keys carry the tile address plus a tier suffix).
        Caller holds ``self._lock``; in-flight renders are version-guarded."""
        mine = [key for key in self._cache.keys() if view.owns_key(key)]
        if not mine:
            return 0
        zooms = {key[0] for key in mine}
        affected: set = set()
        for zoom in zooms:
            for batch in batches:
                affected |= affected_tiles(self.scheme, zoom, batch, self.bandwidth)
        doomed = []
        for key in mine:
            base = key[:-1] if isinstance(key[-1], str) else key
            if base[:3] in affected:
                doomed.append(key)
        return self._cache.invalidate(doomed)

    # -- introspection -----------------------------------------------------

    @property
    def points_count(self) -> int:
        """Number of live events in the all-time view."""
        return len(self._views[None].stream)

    @property
    def _points(self) -> np.ndarray:
        """The all-time view's point snapshot (kept for tests/tools that
        re-render tiles outside the service)."""
        return self._views[None].points

    @property
    def queue_depth(self) -> int:
        """In-flight renders (running + queued)."""
        return len(self._inflight)

    @property
    def windows(self) -> list[float]:
        """The live window lengths, ascending."""
        return sorted(s for s in self._views if s is not None)

    def health(self) -> dict:
        """The ``/healthz`` payload."""
        with self._lock:
            status = "closing" if self._closed else "ok"
            inflight = len(self._inflight)
            windows = len(self._views) - 1
        return {
            "status": status,
            "points": self.points_count,
            "tiles_cached": len(self._cache),
            "inflight": inflight,
            "windows": windows,
            "uptime_s": self._clock() - self._started,
        }

    def stats(self) -> dict:
        """The ``/metricz`` payload: recorder dump + live cache/queue/window
        state.

        With a coordinator attached, its accumulated distributed counters
        (``dist.shards``, ``dist.retries``, ``dist.worker_deaths``, byte
        counts, per-shard phases) are folded into the dump — through a
        scratch recorder, so repeated calls never double-count.
        """
        self.recorder.set_gauge("serve.queue_depth", self.queue_depth)
        self.recorder.set_gauge("serve.cache_size", len(self._cache))
        if self.coordinator is not None:
            merged = Recorder()
            merged.merge(self.recorder.snapshot())
            merged.merge(self.coordinator.recorder.snapshot())
            recorder_snapshot = merged.snapshot()
        else:
            recorder_snapshot = self.recorder.snapshot()
        with self._lock:
            views = [
                view.describe()
                for _seconds, view in sorted(
                    ((s, v) for s, v in self._views.items() if s is not None),
                    key=lambda item: item[0],
                )
            ]
            quality = None
            if self.quality is not None:
                quality = {
                    "policy": self.quality.describe(),
                    "bounds": {
                        "all" if s is None else f"{s:g}": dict(
                            v.quality_bounds or {}
                        )
                        for s, v in self._views.items()
                    },
                    "pending_refinements": len(self._refine),
                    "degraded_active": self._degraded_active,
                }
        return {
            "quality": quality,
            "recorder": recorder_snapshot,
            "cache": {
                "size": len(self._cache),
                "capacity": self._cache.capacity,
                "ttl_s": self._cache.ttl_s,
                "hits": self._cache.hits,
                "misses": self._cache.misses,
                "evictions": self._cache.evictions,
                "expirations": self._cache.expirations,
            },
            "queue": {"depth": self.queue_depth, "limit": self.queue_limit},
            "window": {
                "ticks": self._window_ticks,
                "tick_s": self.tick_s,
                "expired_points": self._window_expired,
                "max_windows": self.max_windows,
                "views": views,
            },
            "points": self.points_count,
            "uptime_s": self._clock() - self._started,
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop accepting work and shut the render pool down.

        With ``drain=True`` (the default, and what SIGINT does) in-flight
        renders finish and their waiters get answers; queued-but-unstarted
        renders are cancelled either way.  Afterwards no pool thread is left
        alive.  Idempotent.
        """
        with self._lock:
            self._closed = True
            self._refine.clear()
        self._pool.shutdown(wait=drain, cancel_futures=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "TileService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
