"""`TileService`: the concurrent heart of the KDV tile server.

The paper positions SLAM as the engine behind interactive web KDV tools
(KDV-Explorer); serving that workload means many clients hammering the same
small set of visible tiles while a live feed appends events.  The service
composes four mechanisms, each individually simple:

**Single-flight coalescing.**
    N concurrent requests for the same cold ``(zoom, tx, ty)`` trigger
    exactly one SLAM render; the leader submits a future and the other N-1
    join it.  With a pan/zoom crowd the render rate is bounded by the number
    of *distinct* visible tiles, not the request rate.

**Bounded render pool with backpressure.**
    Renders run on a fixed :class:`~concurrent.futures.ThreadPoolExecutor`.
    When the number of in-flight renders reaches ``queue_limit`` the service
    refuses new *distinct* tiles with :class:`ServiceOverloaded` (HTTP 503 +
    ``Retry-After``) instead of queueing unboundedly — joining an existing
    render is always allowed, since it adds no work.  A per-request deadline
    turns slow renders into :class:`ServiceTimeout` (HTTP 504) for the
    waiter; the render itself completes and warms the cache.

**TTL + LRU tile cache with targeted invalidation.**
    Rendered tiles live in a :class:`~repro.serve.cache.TTLCache`.  Ingest
    drops exactly the tiles whose region intersects the batch MBR inflated
    by one bandwidth (:func:`~repro.serve.invalidate.affected_tiles`) —
    everything else is provably unchanged, because finite-support kernels
    reach at most one bandwidth.

**Live ingest through the streaming engine.**
    Inserts route through :class:`~repro.extensions.streaming.StreamingKDV`,
    which maintains an always-fresh overview grid incrementally (the
    additive decomposition the paper's real-time plans rest on); the
    overview's peak anchors a stable color scale for ``.png`` tiles.
    A version counter keeps renders that started before an ingest from
    polluting the cache afterwards, and the generation's shared y-sorted
    index (one O(n log n) sort serving every tile render of that
    generation) is dropped and lazily rebuilt.

Everything is observable: the wired-in :class:`~repro.obs.Recorder` carries
request/coalescing/backpressure counters, render/ingest phases, and
queue-depth gauges (see ``docs/serving.md`` for the metric name table).
"""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from time import monotonic
from typing import Callable

import numpy as np

from ..core.api import PARALLEL_METHODS
from ..core.envelope import YSortedIndex
from ..extensions.streaming import StreamingKDV
from ..obs import Recorder
from ..viz.tiles import TileScheme, render_tile
from .cache import TTLCache
from .invalidate import affected_tiles

__all__ = [
    "TileService",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceTimeout",
]


class ServiceClosed(RuntimeError):
    """The service is shutting down and accepts no new work."""


class ServiceOverloaded(RuntimeError):
    """The render queue is full; retry after :attr:`retry_after_s` seconds."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceTimeout(TimeoutError):
    """The per-request deadline elapsed before the render finished."""


class TileService:
    """Concurrent, cache-coherent KDV tile serving over a live dataset.

    Parameters
    ----------
    points:
        Initial dataset: an ``(n, 2)`` array or :class:`~repro.data.points.PointSet`.
    scheme:
        Tile addressing; defaults to the initial dataset's squared MBR.
        Live ingest outside the level-0 world still works (tiles are exact
        for whatever falls inside their region), the pyramid just does not
        grow to cover it.
    tile_size, bandwidth, kernel, method:
        Render parameters, shared by every tile (fixed per service, as in a
        deployed map layer).
    max_zoom:
        Deepest zoom level served (``zoom > max_zoom`` raises ``ValueError``,
        the HTTP layer's 404).
    workers:
        Render pool size.
    queue_limit:
        Maximum in-flight renders (running + queued) before new distinct
        tiles are refused with :class:`ServiceOverloaded`.  Defaults to
        ``4 * workers``.
    deadline_s:
        Default per-request wait bound (``None`` = wait indefinitely).
    cache_tiles, cache_ttl_s:
        Tile cache capacity and optional expiry.
    recorder:
        The metrics sink; a fresh :class:`~repro.obs.Recorder` by default.
    clock:
        Monotonic time source (injectable for TTL tests).
    render_fn:
        Render override with the signature of
        :func:`~repro.viz.tiles.render_tile` (tests inject slow/controlled
        renders; production uses the default).
    coordinator:
        Optional :class:`repro.dist.Coordinator`: cold-tile renders then run
        with ``backend="dist"``, fanning each render's row shards out to the
        coordinator's worker pool (with its in-process fallback when no
        workers are reachable).  The coordinator is caller-owned — the
        service does not close it — and its distributed counters are folded
        into the :meth:`stats` dump so ``/metricz`` reports the distributed
        path.  Requires a SLAM ``method`` and no ``render_fn`` override.
    """

    def __init__(
        self,
        points,
        scheme: "TileScheme | None" = None,
        *,
        tile_size: int = 256,
        bandwidth: float = 500.0,
        kernel: str = "epanechnikov",
        method: str = "slam_bucket_rao",
        max_zoom: int = 8,
        workers: int = 2,
        queue_limit: "int | None" = None,
        deadline_s: "float | None" = None,
        cache_tiles: int = 256,
        cache_ttl_s: "float | None" = None,
        recorder: "Recorder | None" = None,
        clock: Callable[[], float] = monotonic,
        render_fn=None,
        coordinator=None,
    ):
        from ..data.points import PointSet

        xy = points.xy if isinstance(points, PointSet) else np.asarray(points, float)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
        if len(xy) == 0:
            raise ValueError("cannot serve tiles for an empty dataset")
        if tile_size < 1:
            raise ValueError("tile_size must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_zoom < 0:
            raise ValueError("max_zoom must be >= 0")
        if queue_limit is None:
            queue_limit = 4 * workers
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive or None")

        self.scheme = scheme or TileScheme.for_points(xy)
        self.tile_size = int(tile_size)
        self.bandwidth = float(bandwidth)
        self.kernel = kernel
        self.method = method
        self.max_zoom = int(max_zoom)
        self.workers = int(workers)
        self.queue_limit = int(queue_limit)
        self.deadline_s = deadline_s
        self.recorder: Recorder = recorder if recorder is not None else Recorder()
        self._clock = clock
        self.coordinator = coordinator
        if coordinator is not None:
            if render_fn is not None:
                raise ValueError(
                    "coordinator and render_fn are mutually exclusive"
                )
            if method not in PARALLEL_METHODS:
                raise ValueError(
                    f"coordinator requires a SLAM method "
                    f"{PARALLEL_METHODS}, got {method!r}"
                )
            render_fn = self._render_distributed
        self._render_fn = render_fn if render_fn is not None else render_tile

        # live dataset: the streaming engine owns the point batches and keeps
        # an incrementally-maintained overview grid (level-0 resolution) whose
        # peak anchors the png color scale
        self._stream = StreamingKDV(
            region=self.scheme.world,
            size=(min(self.tile_size, 256), min(self.tile_size, 256)),
            kernel=kernel,
            bandwidth=self.bandwidth,
            method=method,
        )
        self._stream.insert(xy)
        self._points = self._stream.points()
        self._version = 0
        # One y-sorted index per ingest generation, shared by every render of
        # that generation (the pyramid's tiles all sweep the same dataset).
        # Built lazily by the first SLAM render, dropped on ingest; the
        # ``tiles.ysorted_builds`` counter pins "exactly one build per
        # generation" in the tests.
        self._ysorted: "YSortedIndex | None" = None

        self._cache = TTLCache(cache_tiles, ttl_s=cache_ttl_s, clock=clock)
        self._lock = threading.Lock()
        self._inflight: dict[tuple[int, int, int], object] = {}
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="kdv-render"
        )
        self._started = clock()

    # -- request path ------------------------------------------------------

    def check_key(self, zoom: int, tx: int, ty: int) -> None:
        """Raise ``ValueError`` unless ``(zoom, tx, ty)`` is a servable tile."""
        if zoom > self.max_zoom:
            raise ValueError(
                f"zoom {zoom} beyond the served pyramid (max_zoom={self.max_zoom})"
            )
        # delegates range checks (including zoom >= 0) to the scheme
        self.scheme.tile_region(zoom, tx, ty)

    def get_tile(
        self,
        zoom: int,
        tx: int,
        ty: int,
        deadline_s: "float | None | type[Ellipsis]" = ...,
    ) -> np.ndarray:
        """The density grid of one tile, rendered at most once concurrently.

        Raises ``ValueError`` for out-of-pyramid keys,
        :class:`ServiceOverloaded` when the render queue is full,
        :class:`ServiceTimeout` when the deadline elapses first, and
        :class:`ServiceClosed` during shutdown.  ``deadline_s`` overrides the
        service default for this request (``...`` keeps the default).
        """
        rec = self.recorder
        self.check_key(zoom, tx, ty)
        key = (zoom, tx, ty)
        rec.count("serve.tile_requests")

        grid = self._cache.get(key)
        if grid is not None:
            rec.count("tiles.cache.hits")
            return grid
        rec.count("tiles.cache.misses")

        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shutting down")
            future = self._inflight.get(key)
            if future is None:
                # the render may have landed between the cache probe and here
                # (count=False: this request's miss is already tallied)
                grid = self._cache.get(key, count=False)
                if grid is not None:
                    rec.count("tiles.cache.hits")
                    return grid
                if len(self._inflight) >= self.queue_limit:
                    rec.count("serve.rejected.overload")
                    raise ServiceOverloaded(
                        f"render queue full ({self.queue_limit} in flight)",
                        retry_after_s=self._retry_after(),
                    )
                rec.count("serve.coalesce.leaders")
                future = self._pool.submit(
                    self._render_into_cache, key, self._version, self._points
                )
                self._inflight[key] = future
                rec.set_gauge("serve.queue_depth", len(self._inflight))
            else:
                rec.count("serve.coalesce.joined")

        timeout = self.deadline_s if deadline_s is ... else deadline_s
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            rec.count("serve.rejected.deadline")
            raise ServiceTimeout(
                f"tile {key} not rendered within {timeout:.3f}s"
            ) from None
        except CancelledError:
            # a queued render cancelled by shutdown before it started
            raise ServiceClosed("service shut down before the render ran") from None

    def tile_image(
        self, zoom: int, tx: int, ty: int, colormap: str = "heat", **kwargs
    ) -> np.ndarray:
        """RGB tile (north-up) on the live overview's color scale."""
        from ..viz.colormap import colorize

        grid = self.get_tile(zoom, tx, ty, **kwargs)
        peak = float(self._stream.grid.max()) or 1.0
        return colorize((grid / peak)[::-1], colormap)

    def _render_into_cache(
        self, key: tuple[int, int, int], version: int, points: np.ndarray
    ) -> np.ndarray:
        rec = self.recorder
        try:
            extra = {}
            ysorted = self._ysorted_for(version)
            if ysorted is not None:
                extra["ysorted"] = ysorted
            with rec.span("tiles.render"):
                grid = self._render_fn(
                    points,
                    self.scheme,
                    *key,
                    tile_size=self.tile_size,
                    bandwidth=self.bandwidth,
                    kernel=self.kernel,
                    method=self.method,
                    **extra,
                )
            grid = np.asarray(grid)
            grid.setflags(write=False)  # shared across waiters and the cache
            with self._lock:
                if version == self._version:
                    evicted = self._cache.put(key, grid)
                    if evicted:
                        rec.count("tiles.cache.evictions", evicted)
                else:
                    # an ingest landed mid-render: hand the grid to the
                    # waiters (it answers the request they made) but do not
                    # cache the now-stale tile
                    rec.count("serve.render.stale")
            return grid
        finally:
            with self._lock:
                self._inflight.pop(key, None)
                rec.set_gauge("serve.queue_depth", len(self._inflight))

    def _render_distributed(self, points, scheme, zoom, tx, ty, **kwargs):
        """:func:`render_tile` with the sweep fanned out to the coordinator's
        worker pool (installed as ``_render_fn`` when a coordinator is set)."""
        return render_tile(
            points,
            scheme,
            zoom,
            tx,
            ty,
            backend="dist",
            coordinator=self.coordinator,
            **kwargs,
        )

    def _ysorted_for(self, version: int) -> "YSortedIndex | None":
        """The current generation's shared y-sorted index, built at most once.

        ``None`` for non-SLAM methods (which cannot consume an index) and for
        stale renders (``version`` behind :attr:`_version`): building an
        index for a dead generation would waste the sort *and* break the
        one-build-per-generation accounting, so a stale render just lets
        ``compute_kdv`` sort its own snapshot.  The build runs under
        :attr:`_lock`, so concurrent cold renders of one generation still
        produce exactly one build (one ``tiles.ysorted_builds`` count).
        """
        if self.method not in PARALLEL_METHODS:
            return None
        with self._lock:
            if version != self._version:
                return None
            if self._ysorted is None:
                self._ysorted = YSortedIndex(self._points)
                self.recorder.count("tiles.ysorted_builds")
            return self._ysorted

    def _retry_after(self) -> float:
        """503 Retry-After estimate: one average render, floored at 100 ms."""
        timer = self.recorder.timer("tiles.render")
        if timer.calls:
            return max(timer.total_seconds / timer.calls, 0.1)
        return 1.0

    # -- live ingest -------------------------------------------------------

    def ingest(self, xy, t=None) -> dict:
        """Insert a batch of events and invalidate exactly the tiles it touches.

        Returns ``{"inserted", "invalidated", "points"}``.  Raises
        ``ValueError`` for malformed batches (before any state changes) and
        :class:`ServiceClosed` during shutdown.
        """
        rec = self.recorder
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
        if not np.all(np.isfinite(xy)):
            raise ValueError("batch coordinates must be finite")
        rec.count("serve.ingest_requests")
        invalidated = 0
        with rec.span("serve.ingest"):
            with self._lock:
                if self._closed:
                    raise ServiceClosed("service is shutting down")
                self._stream.insert(xy, t)
                if len(xy):
                    self._points = self._stream.points()
                    self._version += 1
                    self._ysorted = None  # next generation re-sorts lazily
                    invalidated = self._invalidate_affected(xy)
        rec.count("serve.ingested_points", len(xy))
        rec.count("serve.invalidated_tiles", invalidated)
        return {
            "inserted": int(len(xy)),
            "invalidated": int(invalidated),
            "points": len(self._stream),
        }

    def _invalidate_affected(self, batch: np.ndarray) -> int:
        """Drop cached tiles intersecting the batch MBR + one bandwidth.
        Caller holds ``self._lock``; in-flight renders are version-guarded."""
        cached = self._cache.keys()
        zooms = {key[0] for key in cached}
        affected: set = set()
        for zoom in zooms:
            affected |= affected_tiles(self.scheme, zoom, batch, self.bandwidth)
        return self._cache.invalidate(affected & set(cached))

    # -- introspection -----------------------------------------------------

    @property
    def points_count(self) -> int:
        """Number of live events."""
        return len(self._stream)

    @property
    def queue_depth(self) -> int:
        """In-flight renders (running + queued)."""
        return len(self._inflight)

    def health(self) -> dict:
        """The ``/healthz`` payload."""
        with self._lock:
            status = "closing" if self._closed else "ok"
            inflight = len(self._inflight)
        return {
            "status": status,
            "points": self.points_count,
            "tiles_cached": len(self._cache),
            "inflight": inflight,
            "uptime_s": self._clock() - self._started,
        }

    def stats(self) -> dict:
        """The ``/metricz`` payload: recorder dump + live cache/queue state.

        With a coordinator attached, its accumulated distributed counters
        (``dist.shards``, ``dist.retries``, ``dist.worker_deaths``, byte
        counts, per-shard phases) are folded into the dump — through a
        scratch recorder, so repeated calls never double-count.
        """
        self.recorder.set_gauge("serve.queue_depth", self.queue_depth)
        self.recorder.set_gauge("serve.cache_size", len(self._cache))
        if self.coordinator is not None:
            merged = Recorder()
            merged.merge(self.recorder.snapshot())
            merged.merge(self.coordinator.recorder.snapshot())
            recorder_snapshot = merged.snapshot()
        else:
            recorder_snapshot = self.recorder.snapshot()
        return {
            "recorder": recorder_snapshot,
            "cache": {
                "size": len(self._cache),
                "capacity": self._cache.capacity,
                "ttl_s": self._cache.ttl_s,
                "hits": self._cache.hits,
                "misses": self._cache.misses,
                "evictions": self._cache.evictions,
                "expirations": self._cache.expirations,
            },
            "queue": {"depth": self.queue_depth, "limit": self.queue_limit},
            "points": self.points_count,
            "uptime_s": self._clock() - self._started,
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop accepting work and shut the render pool down.

        With ``drain=True`` (the default, and what SIGINT does) in-flight
        renders finish and their waiters get answers; queued-but-unstarted
        renders are cancelled either way.  Afterwards no pool thread is left
        alive.  Idempotent.
        """
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=drain, cancel_futures=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "TileService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
