"""Sliding-window views for the tile service.

The paper's real-time plans rest on density being *additive over the
dataset*: a sliding time window never recomputes the full grid — each tick
subtracts the KDV of the expired batch and adds the KDV of the new one
(:class:`~repro.extensions.streaming.StreamingKDV` does the signed
updates), so a tick costs O(changed points), not O(full sweep).  This is
the "fast sum updating" trick of Langrené & Warin, whose
numerical-stability warning is what the engine's periodic rebuilds answer.

:class:`WindowView` packages everything :class:`~repro.serve.TileService`
keeps per served view of the live dataset: the maintained
:class:`~repro.extensions.streaming.StreamingKDV` state, the point
snapshot tiles render from, the generation version that guards the tile
cache, and the lazily-built y-sorted index shared by every render of one
generation.  The all-time view (``seconds is None``) and every
``window=<seconds>`` view are the same type, so the serving code has one
path for both.
"""

from __future__ import annotations

import math

from ..core.envelope import YSortedIndex

__all__ = ["WindowError", "WindowView", "window_seconds"]


class WindowError(ValueError):
    """A malformed or unservable ``window=`` request (the HTTP layer's 400)."""


def window_seconds(window) -> float:
    """Validate a ``window=`` value into positive, finite seconds."""
    try:
        seconds = float(window)
    except (TypeError, ValueError):
        raise WindowError(
            f"window must be a positive number of seconds, got {window!r}"
        ) from None
    if not math.isfinite(seconds) or seconds <= 0:
        raise WindowError(
            f"window must be a positive number of seconds, got {window!r}"
        )
    return seconds


class WindowView:
    """One served view of the live dataset.

    ``seconds is None`` is the all-time view (every event ever ingested);
    otherwise the view holds exactly the events of the trailing
    ``seconds``-long window, maintained by signed grid updates and expired
    on ticks.

    Attributes
    ----------
    stream:
        The maintained :class:`~repro.extensions.streaming.StreamingKDV`
        (overview grid + live batches).
    points:
        Snapshot array of the live points, what tile renders consume.
        Refreshed whenever the stream changes.
    version:
        Ingest/expiry generation counter; a render started under an older
        version is answered but never cached.
    ysorted:
        The generation's shared y-sorted index (one O(n log n) sort serving
        every tile render of the generation), built lazily and dropped on
        every generation bump.
    zorder:
        The generation's cached Z-order permutation (``zorder_argsort`` of
        the snapshot), shared by every coreset-tier render of the
        generation — "the coreset is resampled per generation".  Built
        lazily, dropped on every bump, like :attr:`ysorted`.
    quality_bounds:
        The generation's calibrated quality bounds
        (``{tier name: advertised epsilon}``, see
        :func:`repro.serve.quality.calibrate`), computed lazily on the
        first degraded serve of the generation and dropped on every bump.
    """

    __slots__ = (
        "seconds", "stream", "points", "version", "ysorted", "zorder",
        "quality_bounds",
    )

    def __init__(self, seconds: "float | None", stream):
        self.seconds = seconds
        self.stream = stream
        self.points = stream.points()
        self.version = 0
        self.ysorted: "YSortedIndex | None" = None
        self.zorder = None
        self.quality_bounds: "dict[str, float] | None" = None

    def bump(self) -> None:
        """Refresh the snapshot after the stream changed: new generation,
        new points array; the y-sorted index, Z-order permutation, and
        calibrated quality bounds are dropped for lazy rebuilds."""
        self.points = self.stream.points()
        self.version += 1
        self.ysorted = None
        self.zorder = None
        self.quality_bounds = None

    def cache_key(
        self, zoom: int, tx: int, ty: int, tier: "str | None" = None
    ) -> tuple:
        """The tile-cache (and in-flight) key for one tile of this view.

        The all-time view keeps the historical 3-tuple form; windowed views
        append their window length, so each window's tiles cache and
        invalidate independently.  Degraded quality tiers append their tier
        name as a final string element (``tier=None`` or ``"exact"`` is the
        exact namespace) — the same suffix-namespace pattern as windows, so
        invalidation covers every tier of an affected tile.
        """
        if self.seconds is None:
            key = (zoom, tx, ty)
        else:
            key = (zoom, tx, ty, self.seconds)
        if tier is None or tier == "exact":
            return key
        return (*key, tier)

    def owns_key(self, key: tuple) -> bool:
        """Whether a cache key addresses a tile of this view (any tier)."""
        if key and isinstance(key[-1], str):
            key = key[:-1]  # strip a degraded-tier suffix
        if self.seconds is None:
            return len(key) == 3
        return len(key) == 4 and key[3] == self.seconds

    def build_ysorted(self) -> "tuple[YSortedIndex | None, bool]":
        """``(index, built_now)`` — the generation's shared index, built at
        most once per generation (caller holds the service lock and uses
        ``built_now`` for the one-build-per-generation accounting).
        ``(None, False)`` while the view is empty."""
        if self.ysorted is not None:
            return self.ysorted, False
        if not len(self.points):
            return None, False
        self.ysorted = YSortedIndex(self.points)
        return self.ysorted, True

    def build_zorder(self):
        """``(order, built_now)`` — the generation's shared Z-order
        permutation for coreset sampling, built at most once per
        generation (same discipline as :meth:`build_ysorted`).
        ``(None, False)`` while the view is empty."""
        if self.zorder is not None:
            return self.zorder, False
        if not len(self.points):
            return None, False
        from ..index.zorder_curve import zorder_argsort

        self.zorder = zorder_argsort(self.points)
        return self.zorder, True

    def color_peak(self) -> float:
        """Peak of the maintained overview grid — the stable color scale
        for this view's ``.png`` tiles."""
        grid = self.stream.grid
        peak = float(grid.max()) if grid.size else 0.0
        return peak or 1.0

    def describe(self) -> dict:
        """The ``/metricz`` summary of this view."""
        return {
            "seconds": self.seconds,
            "points": len(self.stream),
            "version": self.version,
            "rebuilds": self.stream.rebuilds,
            "last_rebuild_drift": self.stream.last_rebuild_drift,
        }
