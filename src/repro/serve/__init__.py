"""Concurrent KDV tile serving: the paper's "real-time KDV system" shape.

SLAM makes a single tile cheap; this package makes *many clients* cheap.
:class:`TileService` wraps the exact tile pyramid (:mod:`repro.viz.tiles`)
and the incremental streaming engine
(:mod:`repro.extensions.streaming`) behind a thread-safe façade with
single-flight render coalescing, a TTL+LRU cache with targeted
invalidation, a bounded render pool with explicit backpressure, sliding
time-window views (:mod:`repro.serve.window`, ``window=<seconds>`` on the
tile API, advanced by O(Δ) ticks), graceful quality degradation
(:mod:`repro.serve.quality`: a ladder of exact / pyramid / coreset tiers
with calibrated error bounds, stepped down under load before any 503),
and graceful shutdown.
:mod:`repro.serve.http` exposes it over stdlib HTTP (``repro serve`` on the
command line); every decision is observable through a wired-in
:class:`repro.obs.Recorder` (``GET /metricz``).

See ``docs/serving.md`` for endpoint semantics, the metrics name table, and
operational knobs.
"""

from .cache import TTLCache
from .http import TileHTTPServer, start_server
from .invalidate import affected_tiles, batch_mbr
from .quality import (
    QualityError,
    QualityPolicy,
    Tier,
    TileResponse,
)
from .service import (
    PendingTile,
    ServiceClosed,
    ServiceOverloaded,
    ServiceTimeout,
    TileService,
)
from .window import WindowError, WindowView

__all__ = [
    "TileService",
    "TTLCache",
    "TileHTTPServer",
    "start_server",
    "affected_tiles",
    "batch_mbr",
    "QualityError",
    "QualityPolicy",
    "Tier",
    "TileResponse",
    "PendingTile",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceTimeout",
    "WindowError",
    "WindowView",
]
