"""Dependency-light HTTP front end for :class:`~repro.serve.TileService`.

Built on stdlib ``http.server`` only (the repo's no-new-dependencies rule),
with one handler thread per connection (``ThreadingHTTPServer``) — the
concurrency discipline lives in the service, not here.

Endpoints
---------
``GET /tiles/{z}/{tx}/{ty}``        raw density grid, ``.npy`` bytes
``GET /tiles/{z}/{tx}/{ty}.npy``    same, explicit
``GET /tiles/{z}/{tx}/{ty}.png``    colored tile (``?colormap=heat|viridis|gray``)
``...?window=<seconds>``            any tile form over only the trailing window
``...?quality=<tier>``              pin a quality tier (``exact``,
                                    ``pyramid:<k>``, ``coreset:<m>``)
``...?max_error=<eps>``             cap the served tier's advertised error bound
``POST /ingest``                    JSON ``{"points": [[x, y], ...], "t": [...]}``
``POST /tick``                      advance the sliding windows (optional JSON
                                    body ``{"now": <event-time>}``)
``GET /healthz``                    liveness + dataset/cache/queue summary
``GET /metricz``                    recorder dump + cache/queue/window/quality
                                    stats (JSON)
``POST /shutdown``                  graceful stop (only with ``allow_shutdown=True``)

Every 200 tile response carries the quality header contract:

``X-KDV-Quality``
    The tier that produced the body (``exact`` when no policy or load
    degradation applies).
``X-KDV-Error-Bound``
    The tier's advertised L-infinity error bound relative to the global
    density peak (``0`` for exact tiles).

Status mapping (the contract the error-path tests pin down):

====  ==========================================================
400   malformed tile coordinates, malformed ingest/tick body,
      malformed or unservable ``window=``, malformed or
      unservable ``quality=`` / ``max_error=``
404   unknown path, tile outside the pyramid or beyond max zoom
503   render queue full past the cheapest admissible quality
      tier (with ``Retry-After``), or shutting down
504   per-request deadline exceeded
====  ==========================================================
"""

from __future__ import annotations

import io
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter

import numpy as np

from .quality import QualityError
from .service import ServiceClosed, ServiceOverloaded, ServiceTimeout, TileService
from .window import WindowError

__all__ = ["TileHTTPServer", "TileRequestHandler", "start_server"]

_TILE_PATH = re.compile(r"^/tiles/([^/]+)/([^/]+)/([^/]+?)(\.npy|\.png)?$")
_INT = re.compile(r"^-?\d+$")


class TileRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's :class:`TileService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> TileService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if not self.server.quiet:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str, headers=()) -> None:
        rec = self.service.recorder
        rec.count("serve.http.requests")
        rec.count(f"serve.http.status.{status}")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict, headers=()) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send(status, body, "application/json", headers)

    def _error(self, status: int, message: str, headers=()) -> None:
        self._send_json(status, {"error": message}, headers)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._send_json(200, self.service.health())
            return
        if path == "/metricz":
            self._send_json(200, self.service.stats())
            return
        if path.startswith("/tiles/") or path == "/tiles":
            self._get_tile(path, query)
            return
        self._error(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802
        path = self.path.partition("?")[0]
        if path == "/ingest":
            self._post_ingest()
            return
        if path == "/tick":
            self._post_tick()
            return
        if path == "/shutdown":
            self._post_shutdown()
            return
        self._error(404, f"unknown path {path!r}")

    # -- tiles -------------------------------------------------------------

    def _get_tile(self, path: str, query: str) -> None:
        rec = self.service.recorder
        start = perf_counter()
        match = _TILE_PATH.match(path)
        if not match:
            self._error(400, "tile path must look like /tiles/{z}/{tx}/{ty}[.npy|.png]")
            return
        z_s, tx_s, ty_s, suffix = match.groups()
        if not (_INT.match(z_s) and _INT.match(tx_s) and _INT.match(ty_s)):
            self._error(400, f"tile coordinates must be integers, got {path!r}")
            return
        zoom, tx, ty = int(z_s), int(tx_s), int(ty_s)
        as_png = suffix == ".png"
        window = _query_param(query, "window", None)
        quality = _query_param(query, "quality", None)
        max_error = _query_param(query, "max_error", None)
        try:
            resp = self.service.request_tile(
                zoom, tx, ty, window=window, quality=quality,
                max_error=max_error,
            )
            if as_png:
                colormap = _query_param(query, "colormap", "heat")
                rgb = self.service.colorize_tile(
                    resp.grid, colormap=colormap, window=window
                )
                from ..viz.image import encode_png

                body, content_type = encode_png(rgb), "image/png"
            else:
                buf = io.BytesIO()
                np.save(buf, resp.grid, allow_pickle=False)
                body, content_type = buf.getvalue(), "application/x-npy"
        except (WindowError, QualityError) as exc:
            self._error(400, str(exc))
            return
        except ServiceOverloaded as exc:
            self._error(
                503, str(exc), headers=[("Retry-After", f"{exc.retry_after_s:.3f}")]
            )
            return
        except ServiceTimeout as exc:
            self._error(504, str(exc))
            return
        except ServiceClosed as exc:
            self._error(503, str(exc), headers=[("Retry-After", "1")])
            return
        except ValueError as exc:
            # out-of-pyramid key or unknown colormap
            self._error(404, str(exc))
            return
        finally:
            rec.timer("serve.http.tiles").add(perf_counter() - start)
        self._send(
            200,
            body,
            content_type,
            headers=[
                ("X-KDV-Quality", resp.tier),
                ("X-KDV-Error-Bound", format(resp.error_bound, ".6g")),
            ],
        )

    # -- ingest ------------------------------------------------------------

    def _post_ingest(self) -> None:
        rec = self.service.recorder
        start = perf_counter()
        try:
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                length = -1
            if length <= 0:
                self._error(400, "ingest requires a JSON body with Content-Length")
                return
            try:
                payload = json.loads(self.rfile.read(length))
            except (json.JSONDecodeError, UnicodeDecodeError):
                self._error(400, "ingest body is not valid JSON")
                return
            if not isinstance(payload, dict) or "points" not in payload:
                self._error(400, 'ingest body must be {"points": [[x, y], ...]}')
                return
            try:
                xy = np.asarray(payload["points"], dtype=np.float64)
                t = payload.get("t")
                t = None if t is None else np.asarray(t, dtype=np.float64)
                outcome = self.service.ingest(xy, t)
            except (ValueError, TypeError) as exc:
                self._error(400, f"bad ingest batch: {exc}")
                return
            except ServiceClosed as exc:
                self._error(503, str(exc), headers=[("Retry-After", "1")])
                return
            self._send_json(200, outcome)
        finally:
            rec.timer("serve.http.ingest").add(perf_counter() - start)

    def _post_tick(self) -> None:
        rec = self.service.recorder
        start = perf_counter()
        try:
            now = None
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                self._error(400, "bad Content-Length")
                return
            if length > 0:
                try:
                    payload = json.loads(self.rfile.read(length))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    self._error(400, "tick body is not valid JSON")
                    return
                if not isinstance(payload, dict):
                    self._error(400, 'tick body must be {} or {"now": <event-time>}')
                    return
                now = payload.get("now")
                if now is not None and not isinstance(now, (int, float)):
                    self._error(400, "tick 'now' must be a number (event time)")
                    return
            try:
                outcome = self.service.tick(now=now)
            except ServiceClosed as exc:
                self._error(503, str(exc), headers=[("Retry-After", "1")])
                return
            self._send_json(200, outcome)
        finally:
            rec.timer("serve.http.tick").add(perf_counter() - start)

    # -- lifecycle ---------------------------------------------------------

    def _post_shutdown(self) -> None:
        if not self.server.allow_shutdown:  # type: ignore[attr-defined]
            self._error(404, "shutdown endpoint is disabled")
            return
        self._send_json(200, {"status": "shutting down"})
        # shutdown() joins the serve_forever loop, so it must not run on this
        # handler thread synchronously before the response is flushed
        threading.Thread(
            target=self.server.shutdown_gracefully,  # type: ignore[attr-defined]
            name="kdv-shutdown",
            daemon=True,
        ).start()


def _query_param(query: str, name: str, default: "str | None") -> "str | None":
    for part in query.split("&"):
        key, _, value = part.partition("=")
        if key == name and value:
            return value
    return default


class TileHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`TileService`.

    Handler threads are daemonic (a hung client cannot block shutdown); the
    render pool inside the service is not, and is always drained explicitly
    by :meth:`shutdown_gracefully` — so a clean exit leaves no non-daemon
    thread behind.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: TileService,
        *,
        allow_shutdown: bool = False,
        quiet: bool = True,
    ):
        super().__init__(address, TileRequestHandler)
        self.service = service
        self.allow_shutdown = allow_shutdown
        self.quiet = quiet
        self._serve_thread: "threading.Thread | None" = None
        self._shutdown_once = threading.Lock()
        self._shut_down = False

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown_gracefully(self, drain: bool = True) -> None:
        """Stop accepting connections, drain renders, release the socket.

        Safe to call from any thread (including handler threads) and
        idempotent; used by SIGINT handling, ``POST /shutdown``, and tests.
        """
        with self._shutdown_once:
            if self._shut_down:
                return
            self._shut_down = True
        self.shutdown()
        self.service.close(drain=drain)
        self.server_close()
        if self._serve_thread is not None and self._serve_thread is not threading.current_thread():
            self._serve_thread.join(timeout=10.0)


def start_server(
    service: TileService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    allow_shutdown: bool = False,
    quiet: bool = True,
    background: bool = True,
) -> TileHTTPServer:
    """Bind and start serving; ``port=0`` picks a free port.

    With ``background=True`` (default, what tests and benches use) the accept
    loop runs on a named daemon thread and this returns immediately; call
    :meth:`TileHTTPServer.shutdown_gracefully` to stop.  With
    ``background=False`` this blocks in ``serve_forever`` until interrupted
    (the CLI path), then shuts down gracefully.
    """
    server = TileHTTPServer(
        (host, port), service, allow_shutdown=allow_shutdown, quiet=quiet
    )
    if background:
        thread = threading.Thread(
            target=server.serve_forever, name="kdv-http-accept", daemon=True
        )
        server._serve_thread = thread
        thread.start()
        return server
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown_gracefully()
    return server
