"""Targeted tile invalidation for live ingest.

Kernel density with a finite-support kernel is *local*: an event at ``p``
contributes only to pixels within one bandwidth of ``p``.  So when a batch
of events is inserted (or deleted), the only tiles whose grids can change
are those whose world rectangle intersects the batch's minimum bounding
rectangle inflated by the bandwidth.  :func:`affected_tiles` computes that
set in O(|batch| + |affected|) — the tile cache drops exactly these keys
and keeps everything else (a property the tests verify by re-rendering).
"""

from __future__ import annotations

import math

import numpy as np

from ..viz.tiles import TileScheme

__all__ = ["affected_tiles", "batch_mbr"]


def batch_mbr(batch: np.ndarray) -> tuple[float, float, float, float]:
    """``(xmin, ymin, xmax, ymax)`` of an ``(n, 2)`` coordinate batch."""
    xy = np.asarray(batch, dtype=np.float64)
    if xy.ndim != 2 or xy.shape[1] != 2:
        raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
    if len(xy) == 0:
        raise ValueError("cannot take the MBR of an empty batch")
    if not np.all(np.isfinite(xy)):
        raise ValueError("batch coordinates must be finite")
    xmin, ymin = xy.min(axis=0)
    xmax, ymax = xy.max(axis=0)
    return float(xmin), float(ymin), float(xmax), float(ymax)


def affected_tiles(
    scheme: TileScheme,
    zoom: int,
    batch: np.ndarray,
    bandwidth: float,
) -> set[tuple[int, int, int]]:
    """Tile keys ``(zoom, tx, ty)`` a batch insert/delete can change.

    The batch MBR is inflated by ``bandwidth`` on every side (the kernel's
    reach) and intersected with the pyramid; an empty batch, or one entirely
    more than a bandwidth outside the world, affects no tiles.

    Tiles are half-open on their low edge here: a point exactly on a shared
    tile border is attributed to both neighbors (the inflation makes the
    boundary case irrelevant in practice, but erring wide is what keeps the
    "no tile outside the set changes" guarantee unconditional).
    """
    if bandwidth <= 0 or not math.isfinite(bandwidth):
        raise ValueError(f"bandwidth must be finite and positive, got {bandwidth!r}")
    xy = np.asarray(batch, dtype=np.float64)
    if xy.ndim != 2 or xy.shape[1] != 2:
        raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
    if len(xy) == 0:
        return set()
    xmin, ymin, xmax, ymax = batch_mbr(xy)
    xmin -= bandwidth
    ymin -= bandwidth
    xmax += bandwidth
    ymax += bandwidth

    world = scheme.world
    per_axis = scheme.tiles_per_axis(zoom)
    if xmax < world.xmin or xmin > world.xmax or ymax < world.ymin or ymin > world.ymax:
        return set()
    side_x = world.width / per_axis
    side_y = world.height / per_axis
    # inclusive tile index ranges of the inflated MBR, clamped to the pyramid
    tx_lo = max(int(math.floor((xmin - world.xmin) / side_x)), 0)
    tx_hi = min(int(math.floor((xmax - world.xmin) / side_x)), per_axis - 1)
    ty_lo = max(int(math.floor((ymin - world.ymin) / side_y)), 0)
    ty_hi = min(int(math.floor((ymax - world.ymin) / side_y)), per_axis - 1)
    return {
        (zoom, tx, ty)
        for tx in range(tx_lo, tx_hi + 1)
        for ty in range(ty_lo, ty_hi + 1)
    }
