"""Visualization substrates: regions, bandwidths, colormaps, exploration."""

from .bandwidth import scaled_bandwidth, scott_bandwidth
from .colormap import apply_colormap, normalize_grid
from .explore import ExplorationSession, random_pan_regions
from .image import ascii_preview, write_pgm, write_ppm
from .region import Raster, Region

__all__ = [
    "Region",
    "Raster",
    "scott_bandwidth",
    "scaled_bandwidth",
    "apply_colormap",
    "normalize_grid",
    "write_ppm",
    "write_pgm",
    "ascii_preview",
    "ExplorationSession",
    "random_pan_regions",
]
