"""Density-to-color mapping.

KDV tools color each pixel by its density value (paper Figure 1: red = high
density = hotspot).  We provide small piecewise-linear colormaps sufficient
for heat-map rendering without external plotting dependencies, applied after
robust normalization (clipping at the 99.5th percentile so a single extreme
pixel does not wash the map out).
"""

from __future__ import annotations

import numpy as np

__all__ = ["COLORMAPS", "apply_colormap", "colorize", "normalize_grid"]

# Control points as (position in [0, 1], (r, g, b)) with 0..255 channels.
_HEAT = [
    (0.00, (255, 255, 255)),
    (0.25, (254, 224, 144)),
    (0.50, (253, 141, 60)),
    (0.75, (227, 26, 28)),
    (1.00, (128, 0, 38)),
]
_VIRIDIS_LIKE = [
    (0.00, (68, 1, 84)),
    (0.25, (59, 82, 139)),
    (0.50, (33, 145, 140)),
    (0.75, (94, 201, 98)),
    (1.00, (253, 231, 37)),
]
_GRAY = [(0.0, (0, 0, 0)), (1.0, (255, 255, 255))]

COLORMAPS: dict[str, list[tuple[float, tuple[int, int, int]]]] = {
    "heat": _HEAT,
    "viridis": _VIRIDIS_LIKE,
    "gray": _GRAY,
}


def normalize_grid(grid: np.ndarray, clip_quantile: float = 0.995) -> np.ndarray:
    """Normalize density values to [0, 1] with high-quantile clipping."""
    grid = np.asarray(grid, dtype=np.float64)
    if grid.size == 0:
        return grid.copy()
    positive = grid[grid > 0]
    top = float(np.quantile(positive, clip_quantile)) if positive.size else 0.0
    if top <= 0.0:
        return np.zeros_like(grid)
    return np.clip(grid / top, 0.0, 1.0)


def colorize(norm: np.ndarray, colormap: str = "heat") -> np.ndarray:
    """Map already-normalized ``[0, 1]`` values to ``(H, W, 3)`` uint8 RGB.

    Callers that normalize across a *set* of grids (the tile pyramid's shared
    color scale, the server's live peak) use this directly;
    :func:`apply_colormap` wraps it with per-grid normalization.
    """
    try:
        stops = COLORMAPS[colormap]
    except KeyError:
        raise ValueError(
            f"unknown colormap {colormap!r}; available: {sorted(COLORMAPS)}"
        ) from None
    norm = np.clip(np.asarray(norm, dtype=np.float64), 0.0, 1.0)
    positions = np.array([s[0] for s in stops])
    colors = np.array([s[1] for s in stops], dtype=np.float64)
    rgb = np.empty(norm.shape + (3,), dtype=np.float64)
    for c in range(3):
        rgb[..., c] = np.interp(norm, positions, colors[:, c])
    return np.clip(np.round(rgb), 0, 255).astype(np.uint8)


def apply_colormap(grid: np.ndarray, colormap: str = "heat") -> np.ndarray:
    """Map a density grid to an ``(H, W, 3)`` uint8 RGB image."""
    return colorize(normalize_grid(grid), colormap)
