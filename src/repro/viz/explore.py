"""Exploratory KDV sessions: zooming, panning, filtering (paper Figure 2).

Domain experts generate *many* KDVs per dataset via exploratory operations —
zoom, pan, bandwidth selection, attribute-based filtering, time-based
filtering — which is why per-frame latency matters so much (paper Section 1,
and the Figure 16 experiments).  :class:`ExplorationSession` models that
loop: it holds the dataset and a current viewport and renders a fresh KDV
after every operation, recording per-frame latency so sessions double as the
measurement harness for the Figure 16 benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from ..data.points import PointSet

if TYPE_CHECKING:  # imported lazily at call time to avoid a package cycle
    from ..core.result import KDVResult
from .bandwidth import scott_bandwidth
from .region import Region

__all__ = ["ExplorationSession", "FrameRecord", "random_pan_regions"]


@dataclass
class FrameRecord:
    """One rendered frame of an exploratory session."""

    operation: str
    region: Region
    n_points: int
    seconds: float
    result: "KDVResult"


def random_pan_regions(
    base: Region,
    count: int = 5,
    size_ratio: float = 0.5,
    seed: int = 0,
    rng: "np.random.Generator | None" = None,
) -> list[Region]:
    """Random same-size sub-rectangles of ``base`` — the paper's panning
    workload (five random ``0.5H x 0.5W`` rectangles inside the city MBR).

    Pass ``rng`` to draw from an existing :class:`numpy.random.Generator`
    (``seed`` is then ignored) — simulator session replays share one seeded
    stream across all their draws this way."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if not 0.0 < size_ratio <= 1.0:
        raise ValueError("size_ratio must be in (0, 1]")
    if rng is None:
        rng = np.random.default_rng(seed)
    w = base.width * size_ratio
    h = base.height * size_ratio
    regions = []
    for _ in range(count):
        x0 = base.xmin + rng.uniform(0.0, base.width - w) if size_ratio < 1 else base.xmin
        y0 = base.ymin + rng.uniform(0.0, base.height - h) if size_ratio < 1 else base.ymin
        regions.append(Region(x0, y0, x0 + w, y0 + h))
    return regions


class ExplorationSession:
    """A stateful zoom/pan/filter loop over one dataset.

    Parameters
    ----------
    points:
        The full dataset.  Filters derive working subsets from it; clearing a
        filter restores the full dataset.
    size:
        Fixed raster resolution per frame, as in the paper's Figure 16
        (``1280 x 960`` there).
    method, kernel, engine:
        Forwarded to :func:`repro.core.api.compute_kdv` for every frame.
    bandwidth:
        ``"scott"`` recomputes Scott's rule on the *full* dataset once and
        keeps it fixed across frames (so zooming changes the region, not the
        smoothing scale); pass a float to control it directly, or call
        :meth:`set_bandwidth` mid-session (the paper's bandwidth-selection
        operation).
    """

    def __init__(
        self,
        points: PointSet,
        size: tuple[int, int] = (1280, 960),
        method: str = "slam_bucket_rao",
        kernel: str = "epanechnikov",
        bandwidth: "float | str" = "scott",
        engine: str = "numpy",
    ):
        if len(points) == 0:
            raise ValueError("cannot explore an empty dataset")
        self.full_points = points
        self.active_points = points
        self.size = size
        self.method = method
        self.kernel = kernel
        self.engine = engine
        self.bandwidth = (
            scott_bandwidth(points.xy) if bandwidth == "scott" else float(bandwidth)
        )
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.base_region = Region.from_points(points.xy)
        self.region = self.base_region
        self.frames: list[FrameRecord] = []

    # -- operations ---------------------------------------------------------

    def render(self, operation: str = "render") -> "KDVResult":
        """Render the current viewport and record the frame."""
        from ..core.api import compute_kdv

        start = time.perf_counter()
        result = compute_kdv(
            self.active_points,
            region=self.region,
            size=self.size,
            kernel=self.kernel,
            bandwidth=self.bandwidth,
            method=self.method,
            engine=self.engine,
        )
        elapsed = time.perf_counter() - start
        self.frames.append(
            FrameRecord(operation, self.region, len(self.active_points), elapsed, result)
        )
        return result

    def zoom(self, ratio: float) -> "KDVResult":
        """Zoom so the viewport is ``ratio`` of the *base* region's extent
        (the paper's zooming experiment uses ratios 0.25/0.5/0.75/1)."""
        self.region = self.base_region.scaled(ratio)
        return self.render(f"zoom:{ratio}")

    def pan_to(self, region: Region) -> "KDVResult":
        """Jump the viewport to an explicit region."""
        self.region = region
        return self.render("pan")

    def pan(self, dx_fraction: float, dy_fraction: float) -> "KDVResult":
        """Shift the viewport by fractions of its own width/height."""
        self.region = self.region.translated(
            dx_fraction * self.region.width, dy_fraction * self.region.height
        )
        return self.render(f"pan:{dx_fraction},{dy_fraction}")

    def reset_view(self) -> "KDVResult":
        """Back to the full-dataset viewport."""
        self.region = self.base_region
        return self.render("reset")

    def set_bandwidth(self, bandwidth: float) -> "KDVResult":
        """Bandwidth-selection operation: re-render with a new ``b``."""
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = float(bandwidth)
        return self.render(f"bandwidth:{bandwidth}")

    def filter_time(self, t_start: float, t_end: float) -> "KDVResult":
        """Time-based filtering (e.g. "events during 2019")."""
        self.active_points = self.full_points.filter_time(t_start, t_end)
        if len(self.active_points) == 0:
            raise ValueError("time filter matched no events")
        return self.render(f"filter_time:{t_start}..{t_end}")

    def filter_category(self, *categories: int) -> "KDVResult":
        """Attribute-based filtering (e.g. "robbery events only")."""
        self.active_points = self.full_points.filter_category(*categories)
        if len(self.active_points) == 0:
            raise ValueError("category filter matched no events")
        return self.render(f"filter_category:{categories}")

    def clear_filters(self) -> "KDVResult":
        """Restore the full dataset."""
        self.active_points = self.full_points
        return self.render("clear_filters")

    # -- reporting ----------------------------------------------------------

    def total_seconds(self) -> float:
        return sum(f.seconds for f in self.frames)

    def latency_summary(self) -> dict[str, float]:
        """Min/mean/median-and-tail/max per-frame latency over the session."""
        if not self.frames:
            return {
                "frames": 0,
                "min": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
                "max": 0.0,
            }
        times = np.asarray([f.seconds for f in self.frames], dtype=np.float64)
        p50, p95, p99 = np.percentile(times, [50.0, 95.0, 99.0])
        return {
            "frames": len(times),
            "min": float(times.min()),
            "mean": float(times.mean()),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "max": float(times.max()),
        }
