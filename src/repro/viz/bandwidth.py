"""Bandwidth selection.

The paper (Section 4.1) follows earlier KDV studies and uses **Scott's rule**
[Scott 1992] to pick the default bandwidth per dataset.  For a 2-D dataset of
``n`` points, Scott's factor is ``n^(-1/(d+4)) = n^(-1/6)``; we collapse the
per-dimension bandwidths into the single radial bandwidth the kernels of
Table 2 expect by using the root-mean-square of the coordinate standard
deviations:

    b = n^(-1/6) * sqrt((var_x + var_y) / 2)

Any positive float can also be passed directly wherever a bandwidth is
accepted; the multiplicative sweep of Figure 15 (0.25x .. 4x) is expressed via
:func:`scaled_bandwidth`.

Beyond the paper's default, two further selectors support the bandwidth
exploration workflow (Figure 2's "bandwidth selection" operation):

* :func:`silverman_bandwidth` — Silverman's robust rule of thumb: same
  ``n^(-1/6)`` factor (the dimension-2 Silverman constant equals 1) but the
  spread estimate is ``min(std, IQR / 1.349)`` per axis, so heavy-tailed
  data (exactly what clustered crime data is) does not inflate the
  bandwidth;
* :func:`lcv_bandwidth` — leave-one-out likelihood cross-validation: picks
  the ``b`` maximizing ``sum_i log f_{-i}(x_i)`` by golden-section search,
  with the leave-one-out densities evaluated through the library's own
  kd-tree range queries (no grid needed).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "scott_bandwidth",
    "scaled_bandwidth",
    "silverman_bandwidth",
    "lcv_bandwidth",
    "BANDWIDTH_SELECTORS",
    "resolve_bandwidth",
]


def scott_bandwidth(xy: np.ndarray) -> float:
    """Scott's-rule radial bandwidth for a 2-D point array."""
    xy = np.asarray(xy, dtype=np.float64)
    n = len(xy)
    if n < 2:
        raise ValueError("Scott's rule needs at least 2 points")
    var_x = float(np.var(xy[:, 0]))
    var_y = float(np.var(xy[:, 1]))
    spread = np.sqrt((var_x + var_y) / 2.0)
    if spread == 0.0:
        raise ValueError("Scott's rule is undefined for coincident points")
    return float(n ** (-1.0 / 6.0) * spread)


def scaled_bandwidth(xy: np.ndarray, ratio: float) -> float:
    """Scott's bandwidth multiplied by ``ratio`` (the Figure 15 sweep)."""
    if ratio <= 0:
        raise ValueError("bandwidth ratio must be positive")
    return scott_bandwidth(xy) * ratio


def silverman_bandwidth(xy: np.ndarray) -> float:
    """Silverman's robust rule of thumb (IQR-guarded spread).

    Never larger than :func:`scott_bandwidth`; substantially smaller when
    the data is clustered with outliers, which is the regime KDV cares
    about.
    """
    xy = np.asarray(xy, dtype=np.float64)
    n = len(xy)
    if n < 2:
        raise ValueError("Silverman's rule needs at least 2 points")

    def robust_spread(values: np.ndarray) -> float:
        std = float(np.std(values))
        q75, q25 = np.percentile(values, [75, 25])
        iqr_sigma = float(q75 - q25) / 1.349
        if iqr_sigma > 0:
            return min(std, iqr_sigma)
        return std  # degenerate IQR (heavy duplication): fall back to std

    sx = robust_spread(xy[:, 0])
    sy = robust_spread(xy[:, 1])
    spread = math.sqrt((sx * sx + sy * sy) / 2.0)
    if spread == 0.0:
        raise ValueError("Silverman's rule is undefined for coincident points")
    return float(n ** (-1.0 / 6.0) * spread)


def _loo_log_likelihood(
    xy: np.ndarray, bandwidth: float, kernel, tree, floor: float
) -> float:
    """Leave-one-out log likelihood of the data under the KDE."""
    n = len(xy)
    radius = kernel.support_radius(bandwidth)
    norm = kernel.normalizer(bandwidth) / (n - 1)
    self_value = float(kernel.evaluate(np.float64(0.0), bandwidth))
    total = 0.0
    for i in range(n):
        neighbors = tree.query_radius(float(xy[i, 0]), float(xy[i, 1]), radius)
        pts = xy[neighbors]
        d_sq = (pts[:, 0] - xy[i, 0]) ** 2 + (pts[:, 1] - xy[i, 1]) ** 2
        density = (float(kernel.evaluate(d_sq, bandwidth).sum()) - self_value) * norm
        total += math.log(max(density, floor))
    return total


def lcv_bandwidth(
    xy: np.ndarray,
    kernel: str = "quartic",
    b_min: float | None = None,
    b_max: float | None = None,
    iterations: int = 20,
    max_points: int = 2000,
    seed: int = 0,
) -> float:
    """Likelihood cross-validation bandwidth by golden-section search.

    Parameters
    ----------
    kernel:
        A finite-support kernel name; the quartic default is smooth at its
        boundary, which keeps the likelihood surface well behaved.
    b_min, b_max:
        Search bracket; defaults to ``[0.05, 4] * scott_bandwidth``.
    iterations:
        Golden-section iterations (20 narrows the bracket ~10,000-fold).
    max_points:
        Datasets larger than this are subsampled for the search (the
        selected bandwidth is then rescaled by ``(m/n)^(-1/6)`` to undo the
        sample-size dependence of the optimum).
    """
    from ..core.kernels import get_kernel
    from ..index.kdtree import KDTree

    xy = np.asarray(xy, dtype=np.float64)
    n = len(xy)
    if n < 3:
        raise ValueError("cross-validation needs at least 3 points")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    kernel_obj = get_kernel(kernel)
    if not np.isfinite(kernel_obj.support_radius(1.0)):
        raise ValueError("LCV requires a finite-support kernel")

    sample_scale = 1.0
    if n > max_points:
        rng = np.random.default_rng(seed)
        idx = rng.choice(n, size=max_points, replace=False)
        xy = xy[idx]
        # Scott-rate correction from the sample's optimum back to full n
        sample_scale = (n / max_points) ** (-1.0 / 6.0)
        n = max_points

    scott = scott_bandwidth(xy)
    lo = scott * 0.05 if b_min is None else float(b_min)
    hi = scott * 4.0 if b_max is None else float(b_max)
    if not 0 < lo < hi:
        raise ValueError("need 0 < b_min < b_max")

    tree = KDTree(xy, leaf_size=64)
    # a likelihood floor far below any plausible density avoids -inf while
    # still penalizing undersmoothing hard
    area = max(np.ptp(xy[:, 0]) * np.ptp(xy[:, 1]), 1e-12)
    floor = 1e-12 / area

    def objective(b: float) -> float:
        return _loo_log_likelihood(xy, b, kernel_obj, tree, floor)

    invphi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - (b - a) * invphi
    d = a + (b - a) * invphi
    fc, fd = objective(c), objective(d)
    for _ in range(iterations):
        if fc > fd:  # maximize
            b, d, fd = d, c, fc
            c = b - (b - a) * invphi
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + (b - a) * invphi
            fd = objective(d)
    best = (a + b) / 2.0
    return float(best * sample_scale)


#: selector name -> function of the point array (the strings ``bandwidth=``
#: accepts wherever a bandwidth parameter is taken)
BANDWIDTH_SELECTORS = {
    "scott": scott_bandwidth,
    "silverman": silverman_bandwidth,
    "lcv": lcv_bandwidth,
}


def resolve_bandwidth(bandwidth: "float | str", xy: np.ndarray) -> float:
    """A concrete positive bandwidth from a float or a selector name.

    Strings route through :data:`BANDWIDTH_SELECTORS` (``"scott"``,
    ``"silverman"``, ``"lcv"``); anything else must be a positive number.
    Unknown selector names raise a ``ValueError`` listing the valid ones —
    not the bare ``float()`` conversion error they used to.
    """
    if isinstance(bandwidth, str):
        selector = BANDWIDTH_SELECTORS.get(bandwidth)
        if selector is None:
            raise ValueError(
                f"unknown bandwidth selector {bandwidth!r}; pass a positive "
                f"number or one of {sorted(BANDWIDTH_SELECTORS)}"
            )
        return float(selector(np.asarray(xy, dtype=np.float64)))
    value = float(bandwidth)
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"bandwidth must be positive, got {value}")
    return value
