"""Slippy-map tile rendering of KDV heat maps.

Web maps (the deployment target of tools like KDV-Explorer, which the paper
builds on) draw raster layers as a pyramid of fixed-size tiles addressed by
``(zoom, tx, ty)``.  This module renders exact KDV tiles on demand:

* :class:`TileScheme` maps tile addresses to world-coordinate regions over a
  configurable square world bounds (use :class:`~repro.data.projection.WebMercator`
  bounds for real maps, or a dataset MBR for local data);
* :func:`render_tile` computes the *exact* density for one tile — crucially,
  points **outside** the tile still contribute within one bandwidth of its
  border, so adjacent tiles are seamless (asserted by the tests);
* :class:`TileRenderer` adds an LRU cache and density normalization shared
  across tiles so colors are consistent over the whole pyramid level.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict

import numpy as np

from ..core.api import PARALLEL_METHODS, compute_kdv
from ..core.envelope import YSortedIndex
from ..obs import NULL_RECORDER, Recorder, active
from ..viz.region import Region

__all__ = ["TileScheme", "render_tile", "TileRenderer"]


class TileScheme:
    """Square tile pyramid over a square world region.

    Zoom level ``z`` splits the world into ``2^z x 2^z`` tiles; tile
    ``(tx, ty)`` covers column ``tx`` (west to east) and row ``ty`` (here
    *south to north*, consistent with the library's grid orientation).
    """

    def __init__(self, world: Region):
        _check_world(world)
        self.world = world

    @classmethod
    def for_points(cls, xy: np.ndarray, pad_fraction: float = 0.05) -> "TileScheme":
        """A scheme whose level-0 tile is the (padded, squared) data MBR."""
        region = Region.from_points(np.asarray(xy, float), pad_fraction=pad_fraction)
        side = max(region.width, region.height)
        cx, cy = region.center
        return cls(Region(cx - side / 2, cy - side / 2, cx + side / 2, cy + side / 2))

    def tiles_per_axis(self, zoom: int) -> int:
        if zoom < 0:
            raise ValueError("zoom must be >= 0")
        return 1 << zoom

    def tile_region(self, zoom: int, tx: int, ty: int) -> Region:
        """World rectangle of one tile."""
        per_axis = self.tiles_per_axis(zoom)
        if not (0 <= tx < per_axis and 0 <= ty < per_axis):
            raise ValueError(f"tile ({tx}, {ty}) out of range at zoom {zoom}")
        side_x = self.world.width / per_axis
        side_y = self.world.height / per_axis
        x0 = self.world.xmin + tx * side_x
        y0 = self.world.ymin + ty * side_y
        return Region(x0, y0, x0 + side_x, y0 + side_y)

    def tile_of_point(self, zoom: int, x: float, y: float) -> tuple[int, int]:
        """The tile containing a world point (clamped to the pyramid)."""
        _check_world(self.world)
        per_axis = self.tiles_per_axis(zoom)
        tx = int((x - self.world.xmin) / self.world.width * per_axis)
        ty = int((y - self.world.ymin) / self.world.height * per_axis)
        return (
            min(max(tx, 0), per_axis - 1),
            min(max(ty, 0), per_axis - 1),
        )


def _check_world(world: Region) -> None:
    """Reject zero-extent / non-finite world bounds with a clear error
    instead of the downstream ``ZeroDivisionError`` or silent NaN tiles."""
    width = float(world.width)
    height = float(world.height)
    if not (
        math.isfinite(width) and math.isfinite(height) and width > 0 and height > 0
    ):
        raise ValueError(
            f"degenerate world region: width={width!r}, height={height!r} "
            "(both must be finite and positive)"
        )


def render_tile(
    points,
    scheme: TileScheme,
    zoom: int,
    tx: int,
    ty: int,
    tile_size: int = 256,
    bandwidth: float = 500.0,
    kernel: str = "epanechnikov",
    method: str = "slam_bucket_rao",
    weights: np.ndarray | None = None,
    ysorted: "YSortedIndex | None" = None,
    backend: "str | None" = None,
    coordinator=None,
) -> np.ndarray:
    """Exact KDV density grid for one tile, shape ``(tile_size, tile_size)``.

    The computation uses the full dataset (SLAM's per-row envelope already
    skips everything farther than ``b`` from each row), so tile edges carry
    the correct contribution from neighbors and the pyramid is seamless.
    Pass a pre-built ``ysorted`` index over the same points to skip the
    per-tile O(n log n) sort — every tile of a pyramid shares one dataset,
    so one index serves them all (:class:`TileRenderer` does this
    automatically).

    ``backend``/``coordinator`` select the sweep's execution backend for the
    SLAM methods (``backend="dist"`` with a :class:`repro.dist.Coordinator`
    fans the render out to a worker pool); both are only forwarded for
    methods that honor them, so baseline methods stay callable.
    """
    if tile_size < 1:
        raise ValueError("tile_size must be >= 1")
    region = scheme.tile_region(zoom, tx, ty)
    kwargs = {}
    if ysorted is not None:
        kwargs["ysorted"] = ysorted
    if backend is not None and method in PARALLEL_METHODS:
        kwargs["backend"] = backend
        if coordinator is not None:
            kwargs["coordinator"] = coordinator
    result = compute_kdv(
        points,
        region=region,
        size=(tile_size, tile_size),
        kernel=kernel,
        bandwidth=bandwidth,
        method=method,
        weights=weights,
        normalization="none",
        **kwargs,
    )
    return result.grid


class TileRenderer:
    """Cached tile rendering with pyramid-consistent coloring.

    Parameters
    ----------
    points:
        The dataset every tile is rendered from.
    scheme:
        Tile addressing; defaults to the dataset's squared MBR.
    cache_tiles:
        LRU capacity (tiles), since pan/zoom UIs re-request aggressively.
    recorder:
        Optional :class:`~repro.obs.Recorder`; when set, every lookup bumps
        the ``tiles.cache.hits`` / ``tiles.cache.misses`` /
        ``tiles.cache.evictions`` counters and each render is timed under a
        ``tiles.render`` phase.  The plain :attr:`cache_hits` /
        :attr:`cache_misses` / :attr:`cache_evictions` integers are always
        maintained regardless.
    """

    def __init__(
        self,
        points,
        scheme: TileScheme | None = None,
        tile_size: int = 256,
        bandwidth: float = 500.0,
        kernel: str = "epanechnikov",
        method: str = "slam_bucket_rao",
        cache_tiles: int = 64,
        recorder: "Recorder | None" = None,
    ):
        from ..data.points import PointSet

        self.points = points
        xy = points.xy if isinstance(points, PointSet) else np.asarray(points, float)
        if len(xy) == 0:
            raise ValueError("cannot render tiles for an empty dataset")
        self._xy = xy
        #: y-sorted index shared by every tile render (the dataset is fixed
        #: for the renderer's lifetime); built lazily on the first SLAM render
        self._ysorted: "YSortedIndex | None" = None
        self.scheme = scheme or TileScheme.for_points(xy)
        self.tile_size = tile_size
        self.bandwidth = float(bandwidth)
        self.kernel = kernel
        self.method = method
        if cache_tiles < 1:
            raise ValueError("cache_tiles must be >= 1")
        self._cache: OrderedDict[tuple[int, int, int], np.ndarray] = OrderedDict()
        self._cache_capacity = cache_tiles
        #: Guards the LRU and serializes renders so concurrent ``tile()``
        #: calls neither corrupt the OrderedDict nor double-render a key.
        #: :class:`repro.serve.TileService` shares this lock when it drives
        #: a renderer directly.
        self.lock = threading.RLock()
        self.recorder = active(recorder)
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        # per-level color scale: max density of the level-0 overview
        overview = self.tile(0, 0, 0)
        self._color_peak = float(overview.max()) or 1.0

    def tile(self, zoom: int, tx: int, ty: int) -> np.ndarray:
        """Density grid of a tile (cached; thread-safe).

        The whole lookup-render-store path holds :attr:`lock`, so concurrent
        callers can never observe the LRU mid-mutation or render the same key
        twice — the second caller blocks and then hits the cache.
        """
        rec = self.recorder
        key = (zoom, tx, ty)
        with self.lock:
            if key in self._cache:
                self.cache_hits += 1
                if rec is not None:
                    rec.count("tiles.cache.hits")
                self._cache.move_to_end(key)
                return self._cache[key]
            self.cache_misses += 1
            if rec is not None:
                rec.count("tiles.cache.misses")
            with (rec or NULL_RECORDER).span("tiles.render"):
                grid = render_tile(
                    self.points,
                    self.scheme,
                    zoom,
                    tx,
                    ty,
                    tile_size=self.tile_size,
                    bandwidth=self.bandwidth,
                    kernel=self.kernel,
                    method=self.method,
                    ysorted=self._ysorted_index(),
                )
            self._cache[key] = grid
            if len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)
                self.cache_evictions += 1
                if rec is not None:
                    rec.count("tiles.cache.evictions")
            return grid

    def _ysorted_index(self) -> "YSortedIndex | None":
        """The shared y-sorted index, built at most once (caller holds
        :attr:`lock`).  ``None`` for non-SLAM methods, which cannot consume
        it.  Each build bumps the ``tiles.ysorted_builds`` counter — the
        tests pin this to exactly one per dataset."""
        if self.method not in PARALLEL_METHODS:
            return None
        if self._ysorted is None:
            self._ysorted = YSortedIndex(self._xy)
            if self.recorder is not None:
                self.recorder.count("tiles.ysorted_builds")
        return self._ysorted

    def invalidate(self, keys) -> int:
        """Drop the given ``(zoom, tx, ty)`` keys from the cache; returns how
        many were actually cached.  Used after the underlying dataset changes
        (see :mod:`repro.serve.invalidate` for computing the affected set)."""
        dropped = 0
        with self.lock:
            for key in keys:
                if self._cache.pop(tuple(key), None) is not None:
                    dropped += 1
        return dropped

    def clear(self) -> None:
        """Empty the tile cache."""
        with self.lock:
            self._cache.clear()

    def tile_image(self, zoom: int, tx: int, ty: int, colormap: str = "heat"):
        """RGB tile (north-up) colored on the pyramid-wide scale."""
        from ..viz.colormap import colorize

        grid = self.tile(zoom, tx, ty)
        return colorize((grid / self._color_peak)[::-1], colormap)
