"""Geographic regions and pixel rasters.

The paper evaluates KDV over a rectangular geographic region rendered at a
screen resolution of ``X x Y`` pixels (Problem 1).  :class:`Region` is the
world-coordinate rectangle; :class:`Raster` pairs a region with a resolution
and exposes the pixel-center coordinate grids the sweep algorithms consume.

Pixel convention: pixel ``(i, j)`` (column i, row j) has its center at

    x_i = xmin + (i + 0.5) * gx        gx = width  / X
    y_j = ymin + (j + 0.5) * gy        gy = height / Y

Row ``j = 0`` is the southernmost row; result grids are indexed ``[j, i]``
(row-major, ``Y x X``).  Pixel centers along a row are strictly increasing and
evenly spaced — the property SLAM_BUCKET's O(1) bucket assignment
(Equations 19-20 of the paper) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Region", "Raster"]


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangle in projected world coordinates (meters)."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if not (self.xmax > self.xmin and self.ymax > self.ymin):
            raise ValueError(
                f"degenerate region: ({self.xmin}, {self.ymin}) .. ({self.xmax}, {self.ymax})"
            )

    @classmethod
    def from_points(cls, xy: np.ndarray, pad_fraction: float = 0.0) -> "Region":
        """Minimum bounding rectangle of a coordinate array, optionally padded."""
        arr = np.asarray(xy, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("cannot infer a region from an empty point set")
        xmin, ymin = arr.min(axis=0)
        xmax, ymax = arr.max(axis=0)
        if xmax == xmin:
            xmax = xmin + 1.0
        if ymax == ymin:
            ymax = ymin + 1.0
        pad_x = (xmax - xmin) * pad_fraction
        pad_y = (ymax - ymin) * pad_fraction
        return cls(xmin - pad_x, ymin - pad_y, xmax + pad_x, ymax + pad_y)

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def center(self) -> tuple[float, float]:
        return (self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0

    def scaled(self, ratio: float, ratio_y: float | None = None) -> "Region":
        """A region with the same center whose width/height are multiplied by
        ``ratio`` (and ``ratio_y`` for the height, if given).

        ``ratio < 1`` zooms in — this is the paper's zooming operation
        (Figure 16a/b), which shrinks the city MBR around its center.
        """
        if ratio <= 0 or (ratio_y is not None and ratio_y <= 0):
            raise ValueError("scale ratios must be positive")
        ry = ratio if ratio_y is None else ratio_y
        cx, cy = self.center
        half_w = self.width * ratio / 2.0
        half_h = self.height * ry / 2.0
        return Region(cx - half_w, cy - half_h, cx + half_w, cy + half_h)

    def translated(self, dx: float, dy: float) -> "Region":
        """The region shifted by ``(dx, dy)`` — the panning primitive."""
        return Region(self.xmin + dx, self.ymin + dy, self.xmax + dx, self.ymax + dy)

    def contains(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorized point-in-region test (closed rectangle)."""
        return (
            (np.asarray(x) >= self.xmin)
            & (np.asarray(x) <= self.xmax)
            & (np.asarray(y) >= self.ymin)
            & (np.asarray(y) <= self.ymax)
        )

    def transposed(self) -> "Region":
        """The region with x and y axes swapped (used by RAO)."""
        return Region(self.ymin, self.xmin, self.ymax, self.xmax)


@dataclass(frozen=True)
class Raster:
    """A :class:`Region` discretized into an ``X x Y`` pixel grid."""

    region: Region
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("raster resolution must be at least 1x1")

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(Y, X)`` — the shape of result arrays."""
        return self.height, self.width

    @property
    def gx(self) -> float:
        """World-units gap between consecutive pixel centers along x."""
        return self.region.width / self.width

    @property
    def gy(self) -> float:
        """World-units gap between consecutive pixel centers along y."""
        return self.region.height / self.height

    def x_centers(self) -> np.ndarray:
        """Pixel-center x coordinates, shape ``(X,)``, strictly increasing."""
        return self.region.xmin + (np.arange(self.width) + 0.5) * self.gx

    def y_centers(self) -> np.ndarray:
        """Pixel-center y coordinates, shape ``(Y,)``, strictly increasing."""
        return self.region.ymin + (np.arange(self.height) + 0.5) * self.gy

    def transposed(self) -> "Raster":
        """The raster with axes swapped (RAO support)."""
        return Raster(self.region.transposed(), self.height, self.width)

    @property
    def pixel_count(self) -> int:
        return self.width * self.height
