"""Minimal image output: binary PPM/PGM/PNG writers and an ASCII preview.

No imaging dependency is available offline, so heat maps are written as
Netpbm files (viewable by virtually every image tool) and terminal previews
use a density character ramp.  :func:`encode_png` produces a standard 8-bit
truecolor PNG from the stdlib alone (``zlib`` + ``struct``) — browsers do not
render PPM, and the tile server (:mod:`repro.serve`) must hand web maps a
format they decode natively.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import numpy as np

__all__ = ["write_ppm", "write_pgm", "encode_png", "write_png", "ascii_preview"]

_ASCII_RAMP = " .:-=+*#%@"


def write_ppm(path: "str | Path", rgb: np.ndarray) -> None:
    """Write an ``(H, W, 3)`` uint8 array as a binary PPM (P6) file."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3 or rgb.dtype != np.uint8:
        raise ValueError(f"expected (H, W, 3) uint8 image, got {rgb.shape} {rgb.dtype}")
    height, width = rgb.shape[:2]
    with open(path, "wb") as f:
        f.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        f.write(rgb.tobytes())


def write_pgm(path: "str | Path", gray: np.ndarray) -> None:
    """Write an ``(H, W)`` uint8 array as a binary PGM (P5) file."""
    gray = np.asarray(gray)
    if gray.ndim != 2 or gray.dtype != np.uint8:
        raise ValueError(f"expected (H, W) uint8 image, got {gray.shape} {gray.dtype}")
    height, width = gray.shape
    with open(path, "wb") as f:
        f.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        f.write(gray.tobytes())


_PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _png_chunk(tag: bytes, payload: bytes) -> bytes:
    return (
        struct.pack(">I", len(payload))
        + tag
        + payload
        + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
    )


def encode_png(rgb: np.ndarray, compress_level: int = 6) -> bytes:
    """Encode an ``(H, W, 3)`` uint8 array as PNG bytes (8-bit truecolor).

    Pure stdlib: one IHDR/IDAT/IEND chunk each, filter type 0 on every
    scanline.  Lossless, so ``.png`` tile responses decode to exactly the
    colormapped grid.
    """
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3 or rgb.dtype != np.uint8:
        raise ValueError(f"expected (H, W, 3) uint8 image, got {rgb.shape} {rgb.dtype}")
    height, width = rgb.shape[:2]
    # prepend the per-scanline filter byte (0 = None) to each row
    raw = np.empty((height, 1 + width * 3), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = rgb.reshape(height, width * 3)
    ihdr = struct.pack(">IIBBBBB", width, height, 8, 2, 0, 0, 0)
    idat = zlib.compress(raw.tobytes(), compress_level)
    return (
        _PNG_SIGNATURE
        + _png_chunk(b"IHDR", ihdr)
        + _png_chunk(b"IDAT", idat)
        + _png_chunk(b"IEND", b"")
    )


def write_png(path: "str | Path", rgb: np.ndarray) -> None:
    """Write an ``(H, W, 3)`` uint8 array as a PNG file."""
    with open(path, "wb") as f:
        f.write(encode_png(rgb))


def ascii_preview(grid: np.ndarray, width: int = 72, height: int = 24) -> str:
    """Render a density grid as an ASCII heat map for terminal inspection.

    The grid is box-downsampled to at most ``width x height`` characters;
    denser pixels map to denser ramp characters.
    """
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise ValueError("expected a 2-D grid")
    if grid.size == 0:
        return ""
    rows, cols = grid.shape
    out_h = min(height, rows)
    out_w = min(width, cols)
    # box-average downsample via bin assignment
    row_bins = (np.arange(rows) * out_h // rows).clip(0, out_h - 1)
    col_bins = (np.arange(cols) * out_w // cols).clip(0, out_w - 1)
    sums = np.zeros((out_h, out_w))
    counts = np.zeros((out_h, out_w))
    np.add.at(sums, (row_bins[:, None], col_bins[None, :]), grid)
    np.add.at(counts, (row_bins[:, None], col_bins[None, :]), 1.0)
    small = sums / counts
    top = small.max()
    if top <= 0:
        levels = np.zeros_like(small, dtype=int)
    else:
        levels = np.minimum(
            (small / top * (len(_ASCII_RAMP) - 1)).astype(int), len(_ASCII_RAMP) - 1
        )
    return "\n".join("".join(_ASCII_RAMP[v] for v in row) for row in levels)
