"""RQS — range-query-based solutions (paper Section 2.2).

For each pixel ``q``, issue a radius-``b`` range query against a spatial
index to obtain ``R(q)`` (Equation 3), then evaluate the kernel sum over the
returned points (Equation 4).  Exact for every kernel with finite support.
Two index choices, matching the paper's RQS_kd and RQS_ball:

* :func:`rqs_kd_grid`    — kd-tree [Bentley 1975]
* :func:`rqs_ball_grid`  — ball tree [Moore 2000]
* :func:`rqs_rtree_grid` — STR-packed R-tree (the index GIS systems use);
  not in the paper's Table 6, included to show the O(XYn) worst case is
  index-independent

The indexes accelerate practice but not the worst case: with bandwidth
comparable to the region size every query returns ~n points and the cost is
O(XYn), which is exactly the behavior Figure 15 of the paper shows (RQS
degrades fastest as ``b`` grows).
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import Kernel
from ..index.balltree import BallTree
from ..index.kdtree import KDTree
from ..index.rtree import RTree
from ..viz.region import Raster

__all__ = ["rqs_grid", "rqs_kd_grid", "rqs_ball_grid", "rqs_rtree_grid"]


def rqs_grid(
    xy: np.ndarray,
    raster: Raster,
    kernel: Kernel,
    bandwidth: float,
    index: str = "kd",
    leaf_size: int = 64,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Compute the raw KDV grid with per-pixel range queries.

    Parameters
    ----------
    index:
        ``"kd"``, ``"ball"``, or ``"rtree"``.
    leaf_size:
        Index leaf size (performance knob only; results are exact either way).
    weights:
        Optional per-point weights.
    """
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    radius = kernel.support_radius(bandwidth)
    if not np.isfinite(radius):
        raise ValueError(
            f"kernel {kernel.name!r} has infinite support; RQS requires a "
            "finite-support kernel"
        )
    xy = np.asarray(xy, dtype=np.float64)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(xy),):
            raise ValueError(
                f"weights must have shape ({len(xy)},), got {weights.shape}"
            )
    if index == "kd":
        tree: KDTree | BallTree | RTree = KDTree(xy, leaf_size=leaf_size)
    elif index == "ball":
        tree = BallTree(xy, leaf_size=leaf_size)
    elif index == "rtree":
        tree = RTree(xy, leaf_size=leaf_size)
    else:
        raise ValueError(
            f"unknown index {index!r}; expected 'kd', 'ball', or 'rtree'"
        )

    xs = raster.x_centers()
    ys = raster.y_centers()
    grid = np.zeros(raster.shape, dtype=np.float64)
    if len(xy) == 0:
        return grid
    for j, k in enumerate(ys):
        row = grid[j]
        for i, qx in enumerate(xs):
            neighbors = tree.query_radius(float(qx), float(k), radius)
            if len(neighbors) == 0:
                continue
            pts = xy[neighbors]
            d_sq = (pts[:, 0] - qx) ** 2 + (pts[:, 1] - k) ** 2
            values = kernel.evaluate(d_sq, bandwidth)
            row[i] = (
                values.sum() if weights is None else float(weights[neighbors] @ values)
            )
    return grid


def rqs_kd_grid(
    xy: np.ndarray,
    raster: Raster,
    kernel: Kernel,
    bandwidth: float,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """RQS with a kd-tree index (paper method RQS_kd)."""
    return rqs_grid(xy, raster, kernel, bandwidth, index="kd", weights=weights)


def rqs_ball_grid(
    xy: np.ndarray,
    raster: Raster,
    kernel: Kernel,
    bandwidth: float,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """RQS with a ball-tree index (paper method RQS_ball)."""
    return rqs_grid(xy, raster, kernel, bandwidth, index="ball", weights=weights)


def rqs_rtree_grid(
    xy: np.ndarray,
    raster: Raster,
    kernel: Kernel,
    bandwidth: float,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """RQS with an STR-packed R-tree index (extension beyond Table 6)."""
    return rqs_grid(xy, raster, kernel, bandwidth, index="rtree", weights=weights)
