"""Competitor methods of the paper's Table 6."""

from .akde import akde_grid
from .akde_dual import akde_dual_grid
from .binned_fft import binned_fft_grid
from .quad import quad_grid
from .rqs import rqs_ball_grid, rqs_grid, rqs_kd_grid, rqs_rtree_grid
from .scan import scan_grid
from .zorder import zorder_grid, zorder_sample

__all__ = [
    "scan_grid",
    "rqs_grid",
    "rqs_kd_grid",
    "rqs_ball_grid",
    "rqs_rtree_grid",
    "zorder_grid",
    "zorder_sample",
    "akde_grid",
    "akde_dual_grid",
    "binned_fft_grid",
    "quad_grid",
]
