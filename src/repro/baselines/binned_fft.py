"""Binned FFT-convolution KDE — the standard practical approximation.

Outside the databases literature, the usual fast KDV recipe (KDEpy,
seaborn/scipy pipelines, many GIS tools) is:

1. **bin** the points onto the pixel grid (optionally with linear/CIC
   splitting across the four surrounding pixels);
2. **convolve** the count grid with the kernel's pixel stamp, via FFT —
   O(XY log XY) regardless of n.

This is *approximate*: each point is displaced to its bin's position, so the
error is bounded by the kernel's variation over one pixel — vanishing as
resolution grows or bandwidth grows relative to the pixel pitch, but
unbounded in the adversarial case (the paper's complaint about inexact
methods stands).  It is included as the practice-standard comparison point
the paper's Table 6 lacks, with its error measurable through
:mod:`repro.bench.metrics`.

Complexity note: O(n + XY log XY) beats even SLAM_BUCKET^(RAO)'s
O(min(X,Y)(max(X,Y)+n)) when n >> XY log XY — exactness, not speed, is what
it trades away.  Supports every kernel (including Gaussian — the stamp is
truncated at ``gaussian_cutoff`` sigmas) and per-point weights.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import Kernel
from ..viz.region import Raster

__all__ = ["binned_fft_grid"]


def _bin_points(
    xy: np.ndarray,
    raster: Raster,
    weights: np.ndarray | None,
    linear: bool,
) -> np.ndarray:
    """Histogram points onto the pixel grid (nearest or linear/CIC)."""
    xs0 = raster.region.xmin + 0.5 * raster.gx  # first pixel center
    ys0 = raster.region.ymin + 0.5 * raster.gy
    fx = (xy[:, 0] - xs0) / raster.gx  # fractional pixel coordinates
    fy = (xy[:, 1] - ys0) / raster.gy
    # Points outside the raster (beyond half a pixel past the border
    # centers) cannot be binned and are DROPPED — unlike the exact methods,
    # which correctly count outside points within one bandwidth of the
    # border.  This border deficit is an inherent approximation of the
    # binned approach; render a slightly padded region if it matters.
    keep = (
        (fx >= -0.5)
        & (fx <= raster.width - 0.5)
        & (fy >= -0.5)
        & (fy <= raster.height - 0.5)
    )
    fx, fy = fx[keep], fy[keep]
    w = (np.ones(len(xy)) if weights is None else weights)[keep]
    grid = np.zeros(raster.shape, dtype=np.float64)
    if not linear:
        ix = np.clip(np.rint(fx).astype(np.int64), 0, raster.width - 1)
        iy = np.clip(np.rint(fy).astype(np.int64), 0, raster.height - 1)
        np.add.at(grid, (iy, ix), w)
        return grid
    # cloud-in-cell: split each point's mass over the 4 surrounding centers
    ix0 = np.floor(fx).astype(np.int64)
    iy0 = np.floor(fy).astype(np.int64)
    tx = fx - ix0
    ty = fy - iy0
    for dx, wx in ((0, 1.0 - tx), (1, tx)):
        for dy, wy in ((0, 1.0 - ty), (1, ty)):
            ix = np.clip(ix0 + dx, 0, raster.width - 1)
            iy = np.clip(iy0 + dy, 0, raster.height - 1)
            np.add.at(grid, (iy, ix), w * wx * wy)
    return grid


def binned_fft_grid(
    xy: np.ndarray,
    raster: Raster,
    kernel: Kernel,
    bandwidth: float,
    weights: np.ndarray | None = None,
    linear_binning: bool = True,
    gaussian_cutoff: float = 6.0,
) -> np.ndarray:
    """Approximate raw KDV grid by binning + FFT convolution.

    Parameters
    ----------
    linear_binning:
        Split each point's mass linearly over the four surrounding pixel
        centers (substantially more accurate than nearest-pixel binning for
        the same cost; tested).
    gaussian_cutoff:
        Stamp truncation radius in bandwidths for infinite-support kernels.
    """
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    xy = np.asarray(xy, dtype=np.float64)
    if xy.ndim != 2 or xy.shape[1] != 2:
        raise ValueError(f"expected (n, 2) coordinates, got {xy.shape}")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(xy),):
            raise ValueError(f"weights must have shape ({len(xy)},)")
    if len(xy) == 0:
        return np.zeros(raster.shape, dtype=np.float64)

    counts = _bin_points(xy, raster, weights, linear_binning)

    # kernel stamp over pixel offsets within the support radius
    radius = kernel.support_radius(bandwidth)
    if not np.isfinite(radius):
        radius = gaussian_cutoff * bandwidth
    rx = int(np.ceil(radius / raster.gx))
    ry = int(np.ceil(radius / raster.gy))
    ox = np.arange(-rx, rx + 1) * raster.gx
    oy = np.arange(-ry, ry + 1) * raster.gy
    d_sq = ox[None, :] ** 2 + (oy**2)[:, None]
    stamp = kernel.evaluate(d_sq, bandwidth)

    # linear convolution via zero-padded FFT (sizes: grid + stamp - 1)
    out_h = raster.height + stamp.shape[0] - 1
    out_w = raster.width + stamp.shape[1] - 1
    spectrum = np.fft.rfft2(counts, s=(out_h, out_w)) * np.fft.rfft2(
        stamp, s=(out_h, out_w)
    )
    full = np.fft.irfft2(spectrum, s=(out_h, out_w))
    # crop the "same" region (stamp is centered)
    grid = full[ry : ry + raster.height, rx : rx + raster.width]
    # FFT round-off can leave tiny negatives where the true density is 0
    np.clip(grid, 0.0, None, out=grid)
    return np.ascontiguousarray(grid)
