"""Z-order — the data-sampling baseline [Zheng et al. 2013] (paper Table 6).

Zheng et al. observe that evaluating KDE on a carefully chosen sample of size
``m << n``, with each sample point weighted ``n/m``, approximates the full
density with a probabilistic L-infinity guarantee, and that sorting by a
space-filling curve and taking every ``(n/m)``-th point ("Z-order sampling")
beats uniform random sampling because the sample is spatially stratified.

This module implements that pipeline:

1. sort points by Morton code (:mod:`repro.index.zorder_curve`);
2. take an evenly spaced subsequence of size ``m``;
3. evaluate the *exact* KDV of the sample (scaled by ``n/m``) — we use the
   chunked SCAN evaluator, matching the original method's "evaluate the
   reduced dataset exactly" step.

The method is approximate: the paper groups it with the non-exact
competitors.  ``sample_size`` trades accuracy for time; the default follows
the epsilon-sample sizing m = O(1/eps^2) with eps = 0.05 relative to the
maximum density, capped at n.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.kernels import Kernel
from ..index.zorder_curve import zorder_argsort
from ..viz.region import Raster
from .scan import scan_grid

__all__ = ["zorder_sample", "zorder_grid", "default_sample_size", "epsilon_for"]


def default_sample_size(n: int, epsilon: float = 0.05) -> int:
    """Epsilon-sample sizing: ``m = ceil(1/eps^2)`` capped at ``n``."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return min(n, max(1, math.ceil(1.0 / (epsilon * epsilon))))


def epsilon_for(m: int, n: int) -> float:
    """Inverse of :func:`default_sample_size`: the epsilon a sample of size
    ``m`` out of ``n`` points buys under the ``m = ceil(1/eps^2)`` sizing.

    ``0.0`` when the sample is the whole dataset (``m >= n`` — the "sample"
    is exact).  This is the *theoretical* bound; the serving layer
    (:mod:`repro.serve.quality`) additionally calibrates a measured bound
    per ingest generation and advertises the larger of the two.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if n < 0:
        raise ValueError("n must be >= 0")
    if m >= n:
        return 0.0
    return 1.0 / math.sqrt(m)


def zorder_sample(xy: np.ndarray, sample_size: int) -> np.ndarray:
    """Indices of an evenly spaced Z-order sample of the dataset."""
    xy = np.asarray(xy, dtype=np.float64)
    n = len(xy)
    if sample_size < 1:
        raise ValueError("sample_size must be >= 1")
    if sample_size >= n:
        return np.arange(n, dtype=np.int64)
    order = zorder_argsort(xy)
    # Evenly spaced positions along the curve, centered within each stratum.
    positions = ((np.arange(sample_size) + 0.5) * n / sample_size).astype(np.int64)
    return order[positions]


def zorder_grid(
    xy: np.ndarray,
    raster: Raster,
    kernel: Kernel,
    bandwidth: float,
    sample_size: int | None = None,
    epsilon: float = 0.05,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Approximate raw KDV grid from a Z-order sample.

    Returns the same scale as the exact methods (the weighted sample sum is
    multiplied by total mass / sample mass), so results are directly
    comparable.
    """
    xy = np.asarray(xy, dtype=np.float64)
    n = len(xy)
    if n == 0:
        return np.zeros(raster.shape, dtype=np.float64)
    if sample_size is not None and sample_size > n:
        # an explicit request for more sample than data is a caller bug;
        # silently capping here used to hide it (pass sample_size=None and
        # an epsilon to get the capped automatic sizing instead)
        raise ValueError(
            f"sample_size={sample_size} exceeds the dataset size n={n}; "
            f"pass sample_size <= n (or sample_size=None with an epsilon)"
        )
    m = default_sample_size(n, epsilon) if sample_size is None else sample_size
    sample_idx = zorder_sample(xy, m)
    sample = xy[sample_idx]
    if weights is None:
        scale = n / len(sample)
        return scan_grid(sample, raster, kernel, bandwidth) * scale
    weights = np.asarray(weights, dtype=np.float64)
    sample_weights = weights[sample_idx]
    sample_mass = float(sample_weights.sum())
    if sample_mass == 0.0:
        return np.zeros(raster.shape, dtype=np.float64)
    scale = float(weights.sum()) / sample_mass
    return (
        scan_grid(sample, raster, kernel, bandwidth, weights=sample_weights) * scale
    )
