"""QUAD — quadratic-bound-based KDV [Chan, Cheng, Yiu, SIGMOD 2020].

QUAD accelerates KDV by augmenting a kd-tree with per-node aggregate values
and deriving quadratic lower/upper bound functions for a node's total kernel
contribution.  For the finite-support kernels of the paper's Table 2 the
bounds collapse to an *exact* three-way classification per (pixel, node):

* node's bounding box entirely outside the support disc -> contributes 0;
* entirely inside -> the contribution is computed *exactly in O(1)* from the
  node's aggregate channel sums (the same decomposition SLAM uses,
  Equation 5 / Table 4);
* straddling -> recurse into the children (direct evaluation at leaves).

This makes QUAD exact and substantially faster than RQS — matching its
position in the paper's Table 7 (best competitor, still 10-50x slower than
SLAM_BUCKET^(RAO)) — while remaining O(XYn) in the worst case because a
pixel near the support boundary of every point degenerates to a full scan.

Engines
-------
``engine="python"`` descends the tree once per pixel (the method as
published); ``engine="numpy"`` descends once per pixel *row*, carrying the
set of still-unresolved pixels as a vector — the classification is identical
per pixel, so both produce the same grid, and tests assert so.

Numerical note: the tree is built in a bandwidth-scaled frame centered on the
raster (same conditioning trick as :mod:`repro.core.sweep`), so the aggregate
recombination stays well-conditioned even for the quartic kernel.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import Kernel
from ..index.kdtree import KDTree
from ..viz.region import Raster

__all__ = ["quad_grid"]


def _scaled_problem(
    xy: np.ndarray, raster: Raster, bandwidth: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shift to the raster center and divide by the bandwidth."""
    cx = (raster.region.xmin + raster.region.xmax) / 2.0
    cy = (raster.region.ymin + raster.region.ymax) / 2.0
    scaled = (np.asarray(xy, dtype=np.float64) - (cx, cy)) / bandwidth
    xs = (raster.x_centers() - cx) / bandwidth
    ys = (raster.y_centers() - cy) / bandwidth
    return scaled, xs, ys


def _quad_pixel(tree: KDTree, kernel: Kernel, qx: float, qy: float) -> float:
    """Exact QUAD evaluation of a single pixel (scalar engine)."""
    total = 0.0
    stack = [0]
    while stack:
        node = stack.pop()
        if tree.node_size(node) == 0:
            continue
        if tree.min_dist_sq(node, qx, qy) > 1.0:
            continue  # node entirely outside the unit support disc
        if tree.max_dist_sq(node, qx, qy) <= 1.0:
            total += float(
                kernel.density_from_aggregates(qx, qy, tree.node_agg[node], 1.0)
            )
            continue
        if tree.is_leaf(node):
            start, end = tree.node_start[node], tree.node_end[node]
            pts = tree.points[start:end]
            d_sq = (pts[:, 0] - qx) ** 2 + (pts[:, 1] - qy) ** 2
            values = kernel.evaluate(d_sq, 1.0)
            if tree.weights is not None:
                values = values * tree.weights[start:end]
            total += float(values.sum())
        else:
            stack.append(int(tree.node_left[node]))
            stack.append(int(tree.node_right[node]))
    return total


def _quad_row(
    tree: KDTree, kernel: Kernel, xs: np.ndarray, qy: float, out_row: np.ndarray
) -> None:
    """Vectorized QUAD evaluation of one pixel row (batched engine)."""
    stack: list[tuple[int, np.ndarray]] = [(0, np.arange(len(xs)))]
    while stack:
        node, active = stack.pop()
        if tree.node_size(node) == 0 or len(active) == 0:
            continue
        xmin, ymin, xmax, ymax = tree.node_bbox[node]
        qx = xs[active]
        dx_min = np.maximum(np.maximum(xmin - qx, 0.0), qx - xmax)
        dy_min = max(ymin - qy, 0.0, qy - ymax)
        dmin_sq = dx_min * dx_min + dy_min * dy_min
        dx_max = np.maximum(qx - xmin, xmax - qx)
        dy_max = max(qy - ymin, ymax - qy)
        dmax_sq = dx_max * dx_max + dy_max * dy_max

        inside = dmax_sq <= 1.0
        outside = dmin_sq > 1.0
        if np.any(inside):
            sel = active[inside]
            out_row[sel] += kernel.density_from_aggregates(
                xs[sel], qy, tree.node_agg[node], 1.0
            )
        rest = active[~(inside | outside)]
        if len(rest) == 0:
            continue
        if tree.is_leaf(node):
            start, end = tree.node_start[node], tree.node_end[node]
            pts = tree.points[start:end]
            d_sq = (pts[:, 0, None] - xs[rest][None, :]) ** 2 + (
                (pts[:, 1] - qy) ** 2
            )[:, None]
            values = kernel.evaluate(d_sq, 1.0)
            if tree.weights is not None:
                values = values * tree.weights[start:end, None]
            out_row[rest] += values.sum(axis=0)
        else:
            stack.append((int(tree.node_left[node]), rest))
            stack.append((int(tree.node_right[node]), rest))


def quad_grid(
    xy: np.ndarray,
    raster: Raster,
    kernel: Kernel,
    bandwidth: float,
    leaf_size: int = 32,
    engine: str = "numpy",
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Compute the exact raw KDV grid with the QUAD method."""
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if kernel.num_channels is None:
        raise ValueError(
            f"kernel {kernel.name!r} has no aggregate decomposition; QUAD "
            "supports the finite-support kernels of Table 2 only"
        )
    if engine not in ("numpy", "python"):
        raise ValueError(f"unknown engine {engine!r}")
    scaled, xs, ys = _scaled_problem(xy, raster, bandwidth)
    grid = np.zeros(raster.shape, dtype=np.float64)
    if len(scaled) == 0:
        return grid
    tree = KDTree(
        scaled, leaf_size=leaf_size, num_channels=kernel.num_channels, weights=weights
    )
    for j, qy in enumerate(ys):
        if engine == "numpy":
            _quad_row(tree, kernel, xs, float(qy), grid[j])
        else:
            for i, qx in enumerate(xs):
                grid[j, i] = _quad_pixel(tree, kernel, float(qx), float(qy))
    factor = kernel.rescale_factor(bandwidth)
    if factor != 1.0:
        grid *= factor
    return grid
