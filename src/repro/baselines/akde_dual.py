"""Dual-tree aKDE — Gray & Moore's full dual-tree algorithm (extension).

The aKDE baseline in :mod:`repro.baselines.akde` traverses the *point* tree
once per pixel (single-tree).  Gray & Moore's paper actually proposes a
**dual-tree** traversal: build a hierarchy over the queries too, and prune
(pixel-tile, point-node) *pairs* — when the kernel value interval over the
whole pair is narrower than the tolerance, one O(1) update settles every
(pixel, point) combination in the pair at once.

Our query hierarchy is implicit: pixel rectangles split along their longer
axis down to single rows/columns of pixels.  Point nodes come from the same
kd-tree the other baselines use.  Distances between a pixel tile and a point
bounding box are rectangle-rectangle min/max distances.

Approximation contract matches single-tree aKDE: with per-point kernel-value
tolerance ``tau``, each pixel's absolute raw-sum error is at most
``mass * tau / 2`` where mass is the dataset's total weight.  With
``tolerance=0`` the traversal degenerates to exact evaluation.

This is the DESIGN.md "optional extension" ablation partner of aKDE: same
guarantee, asymptotically fewer bound evaluations (O((XY + n) polylog)
under mild assumptions vs O(XY log n) single-tree traversals).
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import Kernel
from ..index.kdtree import KDTree
from ..viz.region import Raster

__all__ = ["akde_dual_grid"]


class _PixelTile:
    """A rectangle of pixels [i0, i1) x [j0, j1) with world bounds."""

    __slots__ = ("i0", "i1", "j0", "j1", "xmin", "xmax", "ymin", "ymax")

    def __init__(self, i0, i1, j0, j1, xs, ys):
        self.i0, self.i1, self.j0, self.j1 = i0, i1, j0, j1
        self.xmin, self.xmax = xs[i0], xs[i1 - 1]
        self.ymin, self.ymax = ys[j0], ys[j1 - 1]

    def num_pixels(self) -> int:
        return (self.i1 - self.i0) * (self.j1 - self.j0)

    def split(self, xs, ys):
        """Split along the longer pixel axis; returns two child tiles."""
        if (self.i1 - self.i0) >= (self.j1 - self.j0):
            mid = (self.i0 + self.i1) // 2
            return (
                _PixelTile(self.i0, mid, self.j0, self.j1, xs, ys),
                _PixelTile(mid, self.i1, self.j0, self.j1, xs, ys),
            )
        mid = (self.j0 + self.j1) // 2
        return (
            _PixelTile(self.i0, self.i1, self.j0, mid, xs, ys),
            _PixelTile(self.i0, self.i1, mid, self.j1, xs, ys),
        )


def _rect_min_dist_sq(tile: _PixelTile, bbox) -> float:
    bxmin, bymin, bxmax, bymax = bbox
    dx = max(bxmin - tile.xmax, 0.0, tile.xmin - bxmax)
    dy = max(bymin - tile.ymax, 0.0, tile.ymin - bymax)
    return dx * dx + dy * dy


def _rect_max_dist_sq(tile: _PixelTile, bbox) -> float:
    bxmin, bymin, bxmax, bymax = bbox
    dx = max(bxmax - tile.xmin, tile.xmax - bxmin)
    dy = max(bymax - tile.ymin, tile.ymax - bymin)
    return dx * dx + dy * dy


def akde_dual_grid(
    xy: np.ndarray,
    raster: Raster,
    kernel: Kernel,
    bandwidth: float,
    tolerance: float = 1e-3,
    leaf_size: int = 32,
    tile_size: int = 8,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Approximate raw KDV grid via a dual-tree bound-pruned traversal.

    Parameters
    ----------
    tolerance:
        Per-point kernel-value tolerance ``tau`` (0 = exact).
    tile_size:
        Pixel tiles at or below this many pixels per side stop splitting and
        fall back to direct (vectorized) evaluation against leaf points.
    """
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if tile_size < 1:
        raise ValueError("tile_size must be >= 1")
    xy = np.asarray(xy, dtype=np.float64)
    grid = np.zeros(raster.shape, dtype=np.float64)
    if len(xy) == 0:
        return grid
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(xy),):
            raise ValueError(
                f"weights must have shape ({len(xy)},), got {weights.shape}"
            )

    # bandwidth-scaled frame (see repro.core.sweep)
    cx = (raster.region.xmin + raster.region.xmax) / 2.0
    cy = (raster.region.ymin + raster.region.ymax) / 2.0
    scaled = (xy - (cx, cy)) / bandwidth
    xs = (raster.x_centers() - cx) / bandwidth
    ys = (raster.y_centers() - cy) / bandwidth

    tree = KDTree(scaled, leaf_size=leaf_size, num_channels=1, weights=weights)
    root_tile = _PixelTile(0, raster.width, 0, raster.height, xs, ys)
    stack: list[tuple[_PixelTile, int]] = [(root_tile, 0)]

    while stack:
        tile, node = stack.pop()
        if tree.node_size(node) == 0:
            continue
        bbox = tree.node_bbox[node]
        k_hi = float(kernel.evaluate(_rect_min_dist_sq(tile, bbox), 1.0))
        k_lo = float(kernel.evaluate(_rect_max_dist_sq(tile, bbox), 1.0))
        if k_hi - k_lo <= tolerance:
            if k_hi > 0.0:
                mass = float(tree.node_agg[node][0])
                grid[tile.j0 : tile.j1, tile.i0 : tile.i1] += (
                    mass * (k_hi + k_lo) / 2.0
                )
            continue
        tile_small = (
            tile.i1 - tile.i0 <= tile_size and tile.j1 - tile.j0 <= tile_size
        )
        if tree.is_leaf(node) and tile_small:
            start, end = tree.node_start[node], tree.node_end[node]
            pts = tree.points[start:end]
            tx = xs[tile.i0 : tile.i1]
            ty = ys[tile.j0 : tile.j1]
            # (points, tileY, tileX) distances, vectorized per pair
            d_sq = (
                (pts[:, 0, None, None] - tx[None, None, :]) ** 2
                + (pts[:, 1, None, None] - ty[None, :, None]) ** 2
            )
            values = kernel.evaluate(d_sq, 1.0)
            if tree.weights is not None:
                values = values * tree.weights[start:end, None, None]
            grid[tile.j0 : tile.j1, tile.i0 : tile.i1] += values.sum(axis=0)
        elif tree.is_leaf(node) or (
            not tile_small
            and tile.num_pixels() >= tree.node_size(node)
        ):
            # split the larger side: the pixel tile
            left, right = tile.split(xs, ys)
            stack.append((left, node))
            stack.append((right, node))
        else:
            # split the point node
            stack.append((tile, int(tree.node_left[node])))
            stack.append((tile, int(tree.node_right[node])))

    factor = kernel.rescale_factor(bandwidth)
    if factor != 1.0:
        grid *= factor
    return grid
