"""SCAN — the naive exact baseline (paper Table 6, method "SCAN").

Every pixel scans every data point: ``F(q) = sum_p K(q, p)``.  This is the
O(XYn) reference against which everything else — including the SLAM
algorithms — is verified in the tests, because it evaluates the kernel
definition directly with no algorithmic shortcuts.

The implementation is vectorized row by row with point chunking to bound the
temporary distance matrix, but performs the full XYn distance computations;
its cost therefore scales exactly as the paper's complexity analysis says.
Supports *all* kernels, including the Gaussian (no finite support needed).
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import Kernel
from ..viz.region import Raster

__all__ = ["scan_grid"]

#: Cap on the number of (pixel, point) distance entries materialized at once.
_CHUNK_BUDGET = 4_000_000


def scan_grid(
    xy: np.ndarray,
    raster: Raster,
    kernel: Kernel,
    bandwidth: float,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Compute the raw KDV grid ``sum_p w_p K(q, p)`` by exhaustive scanning."""
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    xy = np.asarray(xy, dtype=np.float64)
    xs = raster.x_centers()
    ys = raster.y_centers()
    grid = np.zeros(raster.shape, dtype=np.float64)
    n = len(xy)
    if n == 0:
        return grid
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError(f"weights must have shape ({n},), got {weights.shape}")

    chunk = max(1, _CHUNK_BUDGET // max(len(xs), 1))
    px = xy[:, 0]
    py = xy[:, 1]
    for j, k in enumerate(ys):
        row = np.zeros(len(xs), dtype=np.float64)
        for start in range(0, n, chunk):
            cx = px[start : start + chunk]
            cy = py[start : start + chunk]
            # (points_in_chunk, X) squared distances
            d_sq = (cx[:, None] - xs[None, :]) ** 2 + ((cy - k) ** 2)[:, None]
            values = kernel.evaluate(d_sq, bandwidth)
            if weights is None:
                row += values.sum(axis=0)
            else:
                row += weights[start : start + chunk] @ values
        grid[j] = row
    return grid
