"""aKDE — bound-based approximate KDE [Gray & Moore, SDM 2003].

Gray & Moore's "nonparametric density estimation: toward computational
tractability" prunes a space-partitioning tree with kernel value bounds: for
a node whose points all lie between distances ``d_min`` and ``d_max`` from
the query, every point's kernel value is within ``[K(d_max), K(d_min)]``
(kernels are monotone non-increasing in distance).  When that interval is
narrower than a tolerance the node's contribution is approximated by
``count * (K(d_min) + K(d_max)) / 2`` with per-point error at most half the
interval width; otherwise the traversal recurses.

The method is *approximate* (the paper's Table 6 groups it with the
non-exact competitors) and — as the paper's Table 7 shows, where aKDE times
out on every dataset — its per-pixel traversals make it the slowest
practical method even though it often visits fewer points than SCAN.

``tolerance`` is the per-point absolute kernel-value tolerance ``tau``; the
absolute density error of a pixel is at most ``n * tau / 2`` (we expose the
guarantee in :func:`akde_error_bound`).  Unlike the exact methods this
baseline supports the Gaussian kernel too.

Engines mirror :mod:`repro.baselines.quad`: per-pixel scalar traversal
("python") and per-row batched traversal ("numpy"); both apply the same
bound test per (pixel, node), so they produce identical grids.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import Kernel
from ..index.kdtree import KDTree
from ..viz.region import Raster

__all__ = ["akde_grid", "akde_error_bound"]


def akde_error_bound(n: int, tolerance: float) -> float:
    """Worst-case absolute error of an aKDE raw-sum grid value."""
    return n * tolerance / 2.0


def _akde_pixel(
    tree: KDTree, kernel: Kernel, qx: float, qy: float, tolerance: float
) -> float:
    total = 0.0
    stack = [0]
    while stack:
        node = stack.pop()
        if tree.node_size(node) == 0:
            continue
        # node mass = point count, or the weight sum for weighted datasets
        mass = float(tree.node_agg[node][0])
        k_hi = float(kernel.evaluate(tree.min_dist_sq(node, qx, qy), 1.0))
        k_lo = float(kernel.evaluate(tree.max_dist_sq(node, qx, qy), 1.0))
        if k_hi - k_lo <= tolerance:
            total += mass * (k_hi + k_lo) / 2.0
            continue
        if tree.is_leaf(node):
            start, end = tree.node_start[node], tree.node_end[node]
            pts = tree.points[start:end]
            d_sq = (pts[:, 0] - qx) ** 2 + (pts[:, 1] - qy) ** 2
            values = kernel.evaluate(d_sq, 1.0)
            if tree.weights is not None:
                values = values * tree.weights[start:end]
            total += float(values.sum())
        else:
            stack.append(int(tree.node_left[node]))
            stack.append(int(tree.node_right[node]))
    return total


def _akde_row(
    tree: KDTree,
    kernel: Kernel,
    xs: np.ndarray,
    qy: float,
    tolerance: float,
    out_row: np.ndarray,
) -> None:
    stack: list[tuple[int, np.ndarray]] = [(0, np.arange(len(xs)))]
    while stack:
        node, active = stack.pop()
        if tree.node_size(node) == 0 or len(active) == 0:
            continue
        mass = float(tree.node_agg[node][0])
        xmin, ymin, xmax, ymax = tree.node_bbox[node]
        qx = xs[active]
        dx_min = np.maximum(np.maximum(xmin - qx, 0.0), qx - xmax)
        dy_min = max(ymin - qy, 0.0, qy - ymax)
        dmin_sq = dx_min * dx_min + dy_min * dy_min
        dx_max = np.maximum(qx - xmin, xmax - qx)
        dy_max = max(qy - ymin, ymax - qy)
        dmax_sq = dx_max * dx_max + dy_max * dy_max

        k_hi = kernel.evaluate(dmin_sq, 1.0)
        k_lo = kernel.evaluate(dmax_sq, 1.0)
        approximable = (k_hi - k_lo) <= tolerance
        if np.any(approximable):
            sel = active[approximable]
            out_row[sel] += mass * (k_hi[approximable] + k_lo[approximable]) / 2.0
        rest = active[~approximable]
        if len(rest) == 0:
            continue
        if tree.is_leaf(node):
            start, end = tree.node_start[node], tree.node_end[node]
            pts = tree.points[start:end]
            d_sq = (pts[:, 0, None] - xs[rest][None, :]) ** 2 + (
                (pts[:, 1] - qy) ** 2
            )[:, None]
            values = kernel.evaluate(d_sq, 1.0)
            if tree.weights is not None:
                values = values * tree.weights[start:end, None]
            out_row[rest] += values.sum(axis=0)
        else:
            stack.append((int(tree.node_left[node]), rest))
            stack.append((int(tree.node_right[node]), rest))


def akde_grid(
    xy: np.ndarray,
    raster: Raster,
    kernel: Kernel,
    bandwidth: float,
    tolerance: float = 1e-3,
    leaf_size: int = 32,
    engine: str = "numpy",
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Compute an approximate raw KDV grid with bound-based tree pruning."""
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if engine not in ("numpy", "python"):
        raise ValueError(f"unknown engine {engine!r}")
    xy = np.asarray(xy, dtype=np.float64)
    grid = np.zeros(raster.shape, dtype=np.float64)
    if len(xy) == 0:
        return grid
    # Same bandwidth-scaled frame as QUAD (kernels depend on d/b only).
    cx = (raster.region.xmin + raster.region.xmax) / 2.0
    cy = (raster.region.ymin + raster.region.ymax) / 2.0
    scaled = (xy - (cx, cy)) / bandwidth
    xs = (raster.x_centers() - cx) / bandwidth
    ys = (raster.y_centers() - cy) / bandwidth
    # num_channels=1 gives every node its mass (count or weight sum)
    tree = KDTree(scaled, leaf_size=leaf_size, num_channels=1, weights=weights)
    for j, qy in enumerate(ys):
        if engine == "numpy":
            _akde_row(tree, kernel, xs, float(qy), tolerance, grid[j])
        else:
            for i, qx in enumerate(xs):
                grid[j, i] = _akde_pixel(tree, kernel, float(qx), float(qy), tolerance)
    factor = kernel.rescale_factor(bandwidth)
    if factor != 1.0:
        grid *= factor
    return grid
