"""Synthetic stand-ins for the paper's four evaluation datasets (Table 5).

=============  ==========  =================  =========================
Paper dataset  size n      category           synthetic preset
=============  ==========  =================  =========================
Seattle        862,873     crime events       compact city, ~20x30 km
Los Angeles    1,255,668   crime events       sprawling, ~80x70 km
New York       1,499,928   traffic accidents  dense grid, ~40x45 km
San Francisco  4,333,098   311 calls          small & very dense, 12x12 km
=============  ==========  =================  =========================

``load_dataset(name, scale=...)`` draws ``round(n_full * scale)`` events from
the city's seeded generator.  ``scale=1.0`` reproduces the paper's full
dataset sizes; the benchmarks default to a smaller scale so a full run
finishes in minutes on a laptop and report the scale they used.  The
substitution rationale is documented in DESIGN.md §4.
"""

from __future__ import annotations

from .generators import CityModel, generate_city
from .points import PointSet

__all__ = ["DATASETS", "dataset_names", "load_dataset", "full_size"]

#: city presets: (model, full dataset size, deterministic seed)
DATASETS: dict[str, tuple[CityModel, int, int]] = {
    "seattle": (
        CityModel(
            name="seattle",
            extent=(20_000.0, 30_000.0),
            num_hotspots=3,
            num_clusters=35,
            hotspot_sigma=700.0,
            cluster_sigma=250.0,
            streets_per_axis=14,
        ),
        862_873,
        101,
    ),
    "los_angeles": (
        CityModel(
            name="los_angeles",
            extent=(80_000.0, 70_000.0),
            num_hotspots=6,
            num_clusters=80,
            hotspot_sigma=1_800.0,
            cluster_sigma=600.0,
            streets_per_axis=20,
        ),
        1_255_668,
        102,
    ),
    "new_york": (
        CityModel(
            name="new_york",
            extent=(40_000.0, 45_000.0),
            num_hotspots=5,
            num_clusters=60,
            hotspot_sigma=1_100.0,
            cluster_sigma=400.0,
            streets_per_axis=24,
            mixture=(0.3, 0.3, 0.3, 0.1),
        ),
        1_499_928,
        103,
    ),
    "san_francisco": (
        CityModel(
            name="san_francisco",
            extent=(12_000.0, 12_000.0),
            num_hotspots=4,
            num_clusters=50,
            hotspot_sigma=350.0,
            cluster_sigma=150.0,
            streets_per_axis=16,
        ),
        4_333_098,
        104,
    ),
}


def dataset_names() -> tuple[str, ...]:
    """The four dataset names in Table 5 order."""
    return tuple(DATASETS)


def full_size(name: str) -> int:
    """The paper's full dataset size for ``name``."""
    _model, n_full, _seed = _lookup(name)
    return n_full


def _lookup(name: str) -> tuple[CityModel, int, int]:
    try:
        return DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None


def load_dataset(name: str, scale: float = 1.0, seed: int | None = None) -> PointSet:
    """Generate the named synthetic dataset at ``scale`` of its full size."""
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    model, n_full, default_seed = _lookup(name)
    n = max(1, int(round(n_full * scale)))
    return generate_city(model, n, seed=default_seed if seed is None else seed)
