"""Dataset sampling utilities.

The paper's dataset-size sweeps (Figures 14, 17, 19) sample 25/50/75/100 % of
each dataset *without replacement*; this module provides that primitive and
the sweep helper the benchmarks use.
"""

from __future__ import annotations

import numpy as np

from .points import PointSet

__all__ = ["sample_without_replacement", "size_sweep"]


def sample_without_replacement(
    points: PointSet, fraction: float, seed: int | None = None
) -> PointSet:
    """Uniform random sample of ``fraction`` of the points, no replacement."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    n = len(points)
    m = max(1, int(round(n * fraction))) if n else 0
    if m >= n:
        return points
    rng = np.random.default_rng(seed)
    idx = rng.choice(n, size=m, replace=False)
    idx.sort()  # keep original order for reproducibility of downstream use
    return points.select(idx)


def size_sweep(
    points: PointSet,
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    seed: int = 0,
) -> list[tuple[float, PointSet]]:
    """The paper's 25/50/75/100 % ladder as ``(fraction, sample)`` pairs."""
    return [(f, sample_without_replacement(points, f, seed=seed)) for f in fractions]
