"""Synthetic city event generators.

The paper evaluates on four open-government datasets (Seattle crimes, Los
Angeles crimes, New York collisions, San Francisco 311 calls) that are not
redistributable here, so we substitute seeded synthetic generators that
reproduce the *properties the algorithms' costs depend on*:

* dataset size ``n`` (presets match the papers' sizes, scalable);
* a city-scale extent in projected meters;
* strong multi-scale clustering: a few downtown-like dense hotspots, many
  neighborhood clusters, plus a street-grid background (events snapped near
  axis-aligned "streets") and uniform noise;
* event timestamps spread over several years (for time-based filtering);
* categorical attribute codes (for attribute-based filtering).

The mixture weights and cluster spreads are per-city presets so the four
synthetic datasets differ the way the real ones do (e.g. the SF stand-in is
much larger and more tightly banded).  See :mod:`repro.data.datasets` for
the presets; this module is the reusable generator machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .points import PointSet

__all__ = ["CityModel", "generate_city"]

_SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class CityModel:
    """Parameters of a synthetic city's event process."""

    name: str
    #: city extent (width, height) in meters
    extent: tuple[float, float]
    #: number of dense downtown hotspots
    num_hotspots: int = 4
    #: number of smaller neighborhood clusters
    num_clusters: int = 40
    #: standard deviation of hotspot / cluster Gaussians, meters
    hotspot_sigma: float = 800.0
    cluster_sigma: float = 300.0
    #: mixture weights: (hotspots, clusters, streets, uniform); normalized
    mixture: tuple[float, float, float, float] = (0.35, 0.35, 0.2, 0.1)
    #: number of street lines per axis for the street-grid component
    streets_per_axis: int = 12
    #: perpendicular jitter around a street line, meters
    street_sigma: float = 60.0
    #: number of attribute categories (e.g. crime types)
    num_categories: int = 6
    #: time range covered, in years ending at t = 0 .. span
    time_span_years: float = 4.0
    #: origin offset in projected meters, so coordinates are realistic
    origin: tuple[float, float] = field(default=(500_000.0, 4_000_000.0))


def _truncate_to_extent(
    rng: np.random.Generator, xy: np.ndarray, extent: tuple[float, float]
) -> np.ndarray:
    """Resample out-of-extent points uniformly inside (keeps n fixed)."""
    width, height = extent
    out = (xy[:, 0] < 0) | (xy[:, 0] > width) | (xy[:, 1] < 0) | (xy[:, 1] > height)
    m = int(out.sum())
    if m:
        xy[out, 0] = rng.uniform(0, width, m)
        xy[out, 1] = rng.uniform(0, height, m)
    return xy


def generate_city(model: CityModel, n: int, seed: int = 0) -> PointSet:
    """Draw ``n`` events from a city model.

    Deterministic for a given ``(model, n, seed)``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    width, height = model.extent
    if n == 0:
        return PointSet(np.empty((0, 2)), t=np.empty(0), category=np.empty(0, int), name=model.name)

    weights = np.asarray(model.mixture, dtype=np.float64)
    weights = weights / weights.sum()
    component = rng.choice(4, size=n, p=weights)
    xy = np.empty((n, 2), dtype=np.float64)

    # Component 0: downtown hotspots (heavier weight on the first hotspot,
    # like a true downtown).
    hotspot_centers = rng.uniform(
        (0.15 * width, 0.15 * height),
        (0.85 * width, 0.85 * height),
        (model.num_hotspots, 2),
    )
    hotspot_weights = 1.0 / np.arange(1, model.num_hotspots + 1)
    hotspot_weights /= hotspot_weights.sum()
    mask = component == 0
    m = int(mask.sum())
    if m:
        which = rng.choice(model.num_hotspots, size=m, p=hotspot_weights)
        xy[mask] = hotspot_centers[which] + rng.normal(0, model.hotspot_sigma, (m, 2))

    # Component 1: neighborhood clusters.
    cluster_centers = rng.uniform((0.0, 0.0), (width, height), (model.num_clusters, 2))
    mask = component == 1
    m = int(mask.sum())
    if m:
        which = rng.integers(0, model.num_clusters, size=m)
        xy[mask] = cluster_centers[which] + rng.normal(0, model.cluster_sigma, (m, 2))

    # Component 2: street grid — pick an axis-aligned street line and jitter
    # perpendicular to it; the along-street coordinate is uniform.
    streets_x = rng.uniform(0, width, model.streets_per_axis)
    streets_y = rng.uniform(0, height, model.streets_per_axis)
    mask = component == 2
    m = int(mask.sum())
    if m:
        vertical = rng.random(m) < 0.5
        sx = streets_x[rng.integers(0, model.streets_per_axis, size=m)]
        sy = streets_y[rng.integers(0, model.streets_per_axis, size=m)]
        xy[mask, 0] = np.where(
            vertical,
            sx + rng.normal(0, model.street_sigma, m),
            rng.uniform(0, width, m),
        )
        xy[mask, 1] = np.where(
            vertical,
            rng.uniform(0, height, m),
            sy + rng.normal(0, model.street_sigma, m),
        )

    # Component 3: uniform background noise.
    mask = component == 3
    m = int(mask.sum())
    if m:
        xy[mask, 0] = rng.uniform(0, width, m)
        xy[mask, 1] = rng.uniform(0, height, m)

    xy = _truncate_to_extent(rng, xy, model.extent)
    xy += np.asarray(model.origin)

    t = rng.uniform(0.0, model.time_span_years * _SECONDS_PER_YEAR, n)
    category = rng.integers(0, model.num_categories, n)
    return PointSet(xy, t=t, category=category, name=model.name)
