"""Point dataset container used throughout the library.

A :class:`PointSet` wraps an ``(n, 2)`` float64 coordinate array in projected
world units (meters), with optional per-point event timestamps and categorical
attribute codes.  Timestamps and categories exist to support the exploratory
operations of the paper's Section 4.2 (time-based and attribute-based
filtering); the density algorithms themselves only look at coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PointSet"]


def _as_xy(xy: np.ndarray) -> np.ndarray:
    arr = np.asarray(xy, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) coordinate array, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError("point coordinates must be finite")
    return arr


@dataclass(frozen=True)
class PointSet:
    """An immutable set of 2-D location data points.

    Parameters
    ----------
    xy:
        ``(n, 2)`` array of (x, y) coordinates in projected meters.
    t:
        Optional ``(n,)`` array of event times (seconds since an arbitrary
        epoch).  Required for time-based filtering.
    category:
        Optional ``(n,)`` integer array of attribute codes (e.g. crime type).
        Required for attribute-based filtering.
    """

    xy: np.ndarray
    t: np.ndarray | None = None
    category: np.ndarray | None = None
    w: np.ndarray | None = None
    name: str = field(default="points")

    def __post_init__(self) -> None:
        object.__setattr__(self, "xy", _as_xy(self.xy))
        n = len(self.xy)
        if self.t is not None:
            t = np.asarray(self.t, dtype=np.float64)
            if t.shape != (n,):
                raise ValueError(f"t must have shape ({n},), got {t.shape}")
            object.__setattr__(self, "t", t)
        if self.category is not None:
            cat = np.asarray(self.category, dtype=np.int64)
            if cat.shape != (n,):
                raise ValueError(f"category must have shape ({n},), got {cat.shape}")
            object.__setattr__(self, "category", cat)
        if self.w is not None:
            w = np.asarray(self.w, dtype=np.float64)
            if w.shape != (n,):
                raise ValueError(f"w must have shape ({n},), got {w.shape}")
            if not np.all(np.isfinite(w)) or np.any(w < 0):
                raise ValueError("weights must be finite and non-negative")
            object.__setattr__(self, "w", w)

    def __len__(self) -> int:
        return len(self.xy)

    @property
    def x(self) -> np.ndarray:
        """The x coordinates, shape ``(n,)``."""
        return self.xy[:, 0]

    @property
    def y(self) -> np.ndarray:
        """The y coordinates, shape ``(n,)``."""
        return self.xy[:, 1]

    def bounds(self) -> tuple[float, float, float, float]:
        """Return the minimum bounding rectangle ``(xmin, ymin, xmax, ymax)``."""
        if len(self) == 0:
            raise ValueError("cannot compute bounds of an empty PointSet")
        xmin, ymin = self.xy.min(axis=0)
        xmax, ymax = self.xy.max(axis=0)
        return float(xmin), float(ymin), float(xmax), float(ymax)

    def select(self, mask: np.ndarray) -> "PointSet":
        """Return a new :class:`PointSet` restricted to ``mask`` (bool or index array)."""
        return PointSet(
            self.xy[mask],
            t=None if self.t is None else self.t[mask],
            category=None if self.category is None else self.category[mask],
            w=None if self.w is None else self.w[mask],
            name=self.name,
        )

    def total_weight(self) -> float:
        """Sum of point weights (the count when the set is unweighted)."""
        return float(self.w.sum()) if self.w is not None else float(len(self))

    def filter_time(self, t_start: float, t_end: float) -> "PointSet":
        """Keep points with ``t_start <= t < t_end`` (time-based filtering)."""
        if self.t is None:
            raise ValueError("PointSet has no timestamps; cannot time-filter")
        return self.select((self.t >= t_start) & (self.t < t_end))

    def filter_category(self, *categories: int) -> "PointSet":
        """Keep points whose category code is one of ``categories``."""
        if self.category is None:
            raise ValueError("PointSet has no categories; cannot attribute-filter")
        return self.select(np.isin(self.category, categories))

    def sample(self, fraction: float, seed: int | None = None) -> "PointSet":
        """Random sample without replacement, as in the paper's size sweeps."""
        from ..data.sampling import sample_without_replacement

        return sample_without_replacement(self, fraction, seed=seed)
