"""CSV import/export for point datasets.

The open-data sources the paper uses publish CSVs with coordinate, timestamp,
and attribute columns; these helpers round-trip our :class:`PointSet` through
the same shape of file so users can bring their own data.

Format: a header line then one row per event —
``x,y[,t][,category]`` — with ``t`` as seconds (float) and ``category`` as an
integer code.  Column presence is inferred from the header.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .points import PointSet

__all__ = ["save_csv", "load_csv"]


def save_csv(points: PointSet, path: "str | Path") -> None:
    """Write a :class:`PointSet` to ``path`` as CSV."""
    columns = ["x", "y"]
    if points.t is not None:
        columns.append("t")
    if points.category is not None:
        columns.append("category")
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(columns)
        for i in range(len(points)):
            row: list[object] = [repr(float(points.xy[i, 0])), repr(float(points.xy[i, 1]))]
            if points.t is not None:
                row.append(repr(float(points.t[i])))
            if points.category is not None:
                row.append(int(points.category[i]))
            writer.writerow(row)


def load_csv(path: "str | Path", name: str | None = None) -> PointSet:
    """Read a :class:`PointSet` from a CSV written by :func:`save_csv`
    (or any CSV with ``x``/``y`` and optional ``t``/``category`` columns)."""
    path = Path(path)
    with open(path, newline="") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty file") from None
        header = [h.strip().lower() for h in header]
        if "x" not in header or "y" not in header:
            raise ValueError(f"{path}: header must contain 'x' and 'y' columns")
        ix, iy = header.index("x"), header.index("y")
        it = header.index("t") if "t" in header else None
        ic = header.index("category") if "category" in header else None

        xs: list[float] = []
        ys: list[float] = []
        ts: list[float] = []
        cats: list[int] = []
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                xs.append(float(row[ix]))
                ys.append(float(row[iy]))
                if it is not None:
                    ts.append(float(row[it]))
                if ic is not None:
                    cats.append(int(row[ic]))
            except (ValueError, IndexError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed row {row!r}") from exc

    return PointSet(
        np.column_stack((xs, ys)) if xs else np.empty((0, 2)),
        t=np.asarray(ts) if it is not None else None,
        category=np.asarray(cats, dtype=np.int64) if ic is not None else None,
        name=name or path.stem,
    )
