"""Datasets: containers, synthetic generators, sampling, and I/O."""

from .datasets import dataset_names, load_dataset
from .generators import CityModel, generate_city
from .io import load_csv, save_csv
from .points import PointSet
from .sampling import sample_without_replacement, size_sweep

__all__ = [
    "PointSet",
    "CityModel",
    "generate_city",
    "load_dataset",
    "dataset_names",
    "sample_without_replacement",
    "size_sweep",
    "load_csv",
    "save_csv",
]
