"""Geographic coordinate projections.

The open datasets the paper evaluates publish WGS84 longitude/latitude,
while the KDV bandwidth is specified in *meters* (Table 5).  These
projections convert between the two, implemented from scratch:

* :class:`LocalEquirectangular` — the standard small-area approximation
  around a reference latitude: meters east/north of a local origin, with
  longitude scaled by ``cos(lat0)``.  Sub-0.1% distance error over city
  extents, which is why accident-analysis pipelines use it.
* :class:`WebMercator` — the EPSG:3857 map projection (what slippy-map tile
  servers use), including its latitude-dependent scale distortion helper so
  bandwidths can be corrected when working in Mercator meters.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["EARTH_RADIUS_M", "LocalEquirectangular", "WebMercator"]

#: Mean Earth radius (meters), the usual spherical approximation.
EARTH_RADIUS_M = 6_371_008.8

_MAX_MERCATOR_LAT = 85.05112878


def _check_lonlat(lon: np.ndarray, lat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    lon = np.asarray(lon, dtype=np.float64)
    lat = np.asarray(lat, dtype=np.float64)
    if np.any(np.abs(lat) > 90.0):
        raise ValueError("latitude out of [-90, 90]")
    if np.any(np.abs(lon) > 180.0):
        raise ValueError("longitude out of [-180, 180]")
    return lon, lat


class LocalEquirectangular:
    """Meters east/north of a local lon/lat origin.

    Exact along the origin's parallel and meridian; distance error grows
    quadratically with the extent, staying below ~0.1% for city-scale areas.
    """

    def __init__(self, origin_lon: float, origin_lat: float):
        _check_lonlat(np.float64(origin_lon), np.float64(origin_lat))
        if abs(origin_lat) >= 89.0:
            raise ValueError("local projection is degenerate near the poles")
        self.origin_lon = float(origin_lon)
        self.origin_lat = float(origin_lat)
        self._cos_lat0 = math.cos(math.radians(origin_lat))

    @classmethod
    def for_points(cls, lon: np.ndarray, lat: np.ndarray) -> "LocalEquirectangular":
        """A projection centered on the data's mean coordinate."""
        lon, lat = _check_lonlat(lon, lat)
        if len(np.atleast_1d(lon)) == 0:
            raise ValueError("cannot center a projection on zero points")
        return cls(float(np.mean(lon)), float(np.mean(lat)))

    def forward(self, lon: np.ndarray, lat: np.ndarray) -> np.ndarray:
        """Lon/lat (degrees) -> ``(n, 2)`` meters east/north of the origin."""
        lon, lat = _check_lonlat(lon, lat)
        x = np.radians(lon - self.origin_lon) * self._cos_lat0 * EARTH_RADIUS_M
        y = np.radians(lat - self.origin_lat) * EARTH_RADIUS_M
        return np.column_stack([np.atleast_1d(x), np.atleast_1d(y)])

    def inverse(self, xy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Meters -> (lon, lat) degrees."""
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) meters, got {xy.shape}")
        lon = self.origin_lon + np.degrees(xy[:, 0] / (EARTH_RADIUS_M * self._cos_lat0))
        lat = self.origin_lat + np.degrees(xy[:, 1] / EARTH_RADIUS_M)
        return lon, lat


class WebMercator:
    """EPSG:3857 spherical Web Mercator (meters)."""

    @staticmethod
    def forward(lon: np.ndarray, lat: np.ndarray) -> np.ndarray:
        """Lon/lat (degrees) -> ``(n, 2)`` Mercator meters.

        Latitudes are clamped to the standard +/-85.051... cutoff.
        """
        lon, lat = _check_lonlat(lon, lat)
        lat = np.clip(lat, -_MAX_MERCATOR_LAT, _MAX_MERCATOR_LAT)
        x = np.radians(lon) * EARTH_RADIUS_M
        y = EARTH_RADIUS_M * np.log(np.tan(np.pi / 4.0 + np.radians(lat) / 2.0))
        return np.column_stack([np.atleast_1d(x), np.atleast_1d(y)])

    @staticmethod
    def inverse(xy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Mercator meters -> (lon, lat) degrees."""
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) meters, got {xy.shape}")
        lon = np.degrees(xy[:, 0] / EARTH_RADIUS_M)
        lat = np.degrees(2.0 * np.arctan(np.exp(xy[:, 1] / EARTH_RADIUS_M)) - np.pi / 2.0)
        return lon, lat

    @staticmethod
    def scale_factor(lat: "float | np.ndarray") -> "float | np.ndarray":
        """Mercator meters per true ground meter at a latitude.

        A 500 m true-ground bandwidth at latitude ``phi`` must be specified
        as ``500 * scale_factor(phi)`` Mercator meters.
        """
        lat_arr = np.clip(np.asarray(lat, dtype=np.float64),
                          -_MAX_MERCATOR_LAT, _MAX_MERCATOR_LAT)
        out = 1.0 / np.cos(np.radians(lat_arr))
        return float(out) if np.isscalar(lat) else out
